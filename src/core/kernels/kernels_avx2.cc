// AVX2 implementations of the kernel table. This TU is the only one built
// with -mavx2 (CMake sets it per-source); it is reached only after a CPUID
// check in the dispatcher, so no function here runs on a non-AVX2 CPU.
//
// Techniques (after proxmark3's bitsliced hot loops):
//   * window filter: 8 quantized coordinates gathered per iteration, signed
//     32-bit lane compares against the quantized bounds, boundary-tie lanes
//     (q == ql or q == qu, measure-2^-30 rare) resolved with the exact
//     double predicate, verdict mask merged BEFORE the left-pack so output
//     order stays the input order;
//   * left-pack via a 256-entry permutation LUT indexed by the movemask;
//   * min/max: 4 doubles gathered per iteration into vminpd/vmaxpd
//     accumulators — min/max of doubles is exact, so this is byte-identical
//     to any scalar scan by associativity/commutativity (no NaNs in [0,1]);
//   * survivor counts: 256-bit AND/ANDNOT with a nibble-LUT (pshufb)
//     popcount, scalar POPCNT tail under four words.
#include <cstring>
#include <immintrin.h>

#include "core/kernels/kernels.hpp"

namespace acn::kernels {
namespace {

/// perm[mask][k] = index of the k-th set lane of mask; identity on the tail
/// so the permute never reads out of the source register.
struct PackLut {
  alignas(32) std::uint32_t perm[256][8];
};

constexpr PackLut make_pack_lut() {
  PackLut lut{};
  for (unsigned mask = 0; mask < 256; ++mask) {
    unsigned k = 0;
    for (unsigned lane = 0; lane < 8; ++lane) {
      if (mask & (1u << lane)) lut.perm[mask][k++] = lane;
    }
    for (unsigned lane = 0; k < 8; ++lane, ++k) lut.perm[mask][k] = lane;
  }
  return lut;
}

constexpr PackLut kPack = make_pack_lut();

std::size_t avx2_filter_in_window(const std::uint32_t* qcol, const double* col,
                                  const std::uint32_t* ids, std::size_t n,
                                  const WindowBoundsQ& b, std::uint32_t* out) {
  const __m256i vql = _mm256_set1_epi32(b.ql);
  const __m256i vqu = _mm256_set1_epi32(b.qu);
  std::size_t out_n = 0;
  std::size_t i = 0;
  // Safe full-width stores: out_n <= i and i + 8 <= n, so out + out_n + 8
  // never passes out + n.
  for (; i + 8 <= n; i += 8) {
    const __m256i vid =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m256i q = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(qcol), vid, 4);
    // Strict interior: ql < q < qu (all values fit signed 32-bit lanes).
    const __m256i in = _mm256_and_si256(_mm256_cmpgt_epi32(q, vql),
                                        _mm256_cmpgt_epi32(vqu, q));
    unsigned in_mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(in)));
    // Boundary ties resolved with the exact double predicate, merged into
    // the mask before packing so order is preserved.
    const __m256i tie = _mm256_or_si256(_mm256_cmpeq_epi32(q, vql),
                                        _mm256_cmpeq_epi32(q, vqu));
    unsigned tie_mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(tie)));
    while (tie_mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(tie_mask));
      tie_mask &= tie_mask - 1;
      const double x = col[ids[i + lane]];
      if (x >= b.lower && x <= b.upper) in_mask |= 1u << lane;
    }
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPack.perm[in_mask]));
    const __m256i packed = _mm256_permutevar8x32_epi32(vid, perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + out_n), packed);
    out_n += static_cast<std::size_t>(__builtin_popcount(in_mask));
  }
  for (; i < n; ++i) {
    const std::uint32_t id = ids[i];
    const double x = col[id];
    if (x >= b.lower && x <= b.upper) out[out_n++] = id;
  }
  return out_n;
}

void avx2_minmax_ids(const double* col, const std::uint32_t* ids, std::size_t n,
                     double* lo, double* hi) {
  double l = col[ids[0]];
  double h = l;
  std::size_t i = 1;
  if (n >= 5) {
    __m256d vlo = _mm256_set1_pd(l);
    __m256d vhi = vlo;
    // Masked gather with an initialized source: same codegen, but avoids
    // gcc's -Wmaybe-uninitialized false positive on _mm256_undefined_pd.
    const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    for (; i + 4 <= n; i += 4) {
      const __m128i vid =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
      const __m256d v = _mm256_mask_i32gather_pd(vlo, col, vid, all, 8);
      vlo = _mm256_min_pd(vlo, v);
      vhi = _mm256_max_pd(vhi, v);
    }
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, vlo);
    for (const double x : tmp) {
      if (x < l) l = x;
    }
    _mm256_store_pd(tmp, vhi);
    for (const double x : tmp) {
      if (x > h) h = x;
    }
  }
  for (; i < n; ++i) {
    const double x = col[ids[i]];
    if (x < l) l = x;
    if (x > h) h = x;
  }
  *lo = l;
  *hi = h;
}

/// Byte popcount of a 256-bit lane via the classic nibble LUT.
inline __m256i popcount_bytes(__m256i v) noexcept {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
                                       3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3,
                                       2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

std::uint64_t avx2_popcount_andnot(const std::uint64_t* a, const std::uint64_t* b,
                                   std::size_t words) {
  std::size_t k = 0;
  std::uint64_t count = 0;
  if (words >= 8) {
    __m256i acc = _mm256_setzero_si256();
    for (; k + 4 <= words; k += 4) {
      const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
      const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k));
      const __m256i open = _mm256_andnot_si256(vb, va);
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcount_bytes(open),
                                                  _mm256_setzero_si256()));
    }
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc);
    count = tmp[0] + tmp[1] + tmp[2] + tmp[3];
  }
  for (; k < words; ++k) {
    count += static_cast<std::uint64_t>(__builtin_popcountll(a[k] & ~b[k]));
  }
  return count;
}

OpenScan avx2_scan_open(const std::uint64_t* base, const std::uint64_t* used,
                        const std::uint64_t* far, const std::uint64_t* l,
                        std::size_t words) {
  OpenScan r;
  std::uint64_t far_hit = 0;
  std::uint64_t l_hit = 0;
  std::size_t k = 0;
  if (words >= 8) {
    __m256i acc = _mm256_setzero_si256();
    __m256i vfar = _mm256_setzero_si256();
    __m256i vl = _mm256_setzero_si256();
    for (; k + 4 <= words; k += 4) {
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + k));
      const __m256i vu =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(used + k));
      const __m256i open = _mm256_andnot_si256(vu, vb);
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcount_bytes(open),
                                                  _mm256_setzero_si256()));
      vfar = _mm256_or_si256(
          vfar, _mm256_and_si256(open, _mm256_loadu_si256(
                                           reinterpret_cast<const __m256i*>(far + k))));
      vl = _mm256_or_si256(
          vl, _mm256_and_si256(open, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i*>(l + k))));
    }
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc);
    r.open = tmp[0] + tmp[1] + tmp[2] + tmp[3];
    far_hit = static_cast<std::uint64_t>(!_mm256_testz_si256(vfar, vfar));
    l_hit = static_cast<std::uint64_t>(!_mm256_testz_si256(vl, vl));
  }
  for (; k < words; ++k) {
    const std::uint64_t open = base[k] & ~used[k];
    r.open += static_cast<std::uint64_t>(__builtin_popcountll(open));
    far_hit |= open & far[k];
    l_hit |= open & l[k];
  }
  r.far_any = far_hit != 0;
  r.l_any = l_hit != 0;
  return r;
}

bool avx2_targets_all_below(const std::uint64_t* targets, std::size_t count,
                            std::size_t words, const std::uint64_t* used,
                            std::uint64_t tau) {
  // The Theorem-7 search calls this once per node with one- or two-word
  // rows (the compact universe rarely tops 128 ids); keeping the complement
  // of `used` in registers and the per-row work branch-free is worth ~2x
  // over the generic per-row popcount call.
  if (words == 1) {
    const std::uint64_t u0 = ~used[0];
    for (std::size_t i = 0; i < count; ++i) {
      if (static_cast<std::uint64_t>(__builtin_popcountll(targets[i] & u0)) >=
          tau) {
        return false;
      }
    }
    return true;
  }
  if (words == 2) {
    const std::uint64_t u0 = ~used[0];
    const std::uint64_t u1 = ~used[1];
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t* row = targets + i * 2;
      const std::uint64_t survivors =
          static_cast<std::uint64_t>(__builtin_popcountll(row[0] & u0)) +
          static_cast<std::uint64_t>(__builtin_popcountll(row[1] & u1));
      if (survivors >= tau) return false;
    }
    return true;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (avx2_popcount_andnot(targets + i * words, used, words) >= tau) return false;
  }
  return true;
}

std::size_t avx2_nsc_scan_rows(const std::uint64_t* bases,
                               const std::uint32_t* rows, std::size_t count,
                               std::size_t words, const std::uint64_t* used,
                               const std::uint64_t* far, const std::uint64_t* l,
                               std::uint64_t tau, std::uint64_t* acc,
                               std::uint32_t* out_rows) {
  std::size_t out_n = 0;
  // Same small-universe fast paths as targets_all_below: the whole row scan
  // stays in registers, no per-row scan_open call.
  if (words == 1) {
    const std::uint64_t u0 = used[0];
    const std::uint64_t f0 = far[0];
    const std::uint64_t l0 = l[0];
    std::uint64_t a0 = acc[0];
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t row = bases[rows[i]];
      const std::uint64_t open = row & ~u0;
      if (static_cast<std::uint64_t>(__builtin_popcountll(open)) <= tau ||
          (open & f0) == 0 || (open & l0) == 0) {
        continue;
      }
      a0 |= row;
      out_rows[out_n++] = rows[i];
    }
    acc[0] = a0;
    return out_n;
  }
  if (words == 2) {
    const std::uint64_t u0 = used[0];
    const std::uint64_t u1 = used[1];
    const std::uint64_t f0 = far[0];
    const std::uint64_t f1 = far[1];
    const std::uint64_t l0 = l[0];
    const std::uint64_t l1 = l[1];
    std::uint64_t a0 = acc[0];
    std::uint64_t a1 = acc[1];
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t* row = bases + rows[i] * 2;
      const std::uint64_t o0 = row[0] & ~u0;
      const std::uint64_t o1 = row[1] & ~u1;
      const std::uint64_t open =
          static_cast<std::uint64_t>(__builtin_popcountll(o0)) +
          static_cast<std::uint64_t>(__builtin_popcountll(o1));
      if (open <= tau || ((o0 & f0) | (o1 & f1)) == 0 ||
          ((o0 & l0) | (o1 & l1)) == 0) {
        continue;
      }
      a0 |= row[0];
      a1 |= row[1];
      out_rows[out_n++] = rows[i];
    }
    acc[0] = a0;
    acc[1] = a1;
    return out_n;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t* row = bases + rows[i] * words;
    const OpenScan scan = avx2_scan_open(row, used, far, l, words);
    if (scan.open <= tau || !scan.far_any || !scan.l_any) continue;
    std::size_t k = 0;
    for (; k + 4 <= words; k += 4) {
      const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + k));
      const __m256i vr = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + k));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + k),
                          _mm256_or_si256(va, vr));
    }
    for (; k < words; ++k) acc[k] |= row[k];
    out_rows[out_n++] = rows[i];
  }
  return out_n;
}

RadiusFilter avx2_filter_in_radius(const std::uint32_t* qcols, const double* cols,
                                   std::size_t stride, std::size_t dims,
                                   const double* centre, double radius,
                                   const std::uint32_t* ids, std::size_t n,
                                   std::uint32_t* out, std::uint32_t* maybe) {
  RadiusFilter r;
  // Per-dimension prefilter bands (joint_dim <= 2 * Point::kMaxDim = 32).
  std::int32_t lo_in[32];
  std::int32_t hi_in[32];
  std::int32_t lo_out[32];
  std::int32_t hi_out[32];
  for (std::size_t t = 0; t < dims; ++t) {
    const RadiusBandQ band = radius_band(centre[t], radius);
    lo_in[t] = band.lo_in;
    hi_in[t] = band.hi_in;
    lo_out[t] = band.lo_out;
    hi_out[t] = band.hi_out;
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vid =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    // all_in / any_out accumulated across dimensions as lane masks.
    unsigned all_in = 0xFFu;
    unsigned any_out = 0;
    for (std::size_t t = 0; t < dims; ++t) {
      const __m256i q = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(qcols + t * stride), vid, 4);
      const __m256i ge_lo_in = _mm256_cmpgt_epi32(q, _mm256_set1_epi32(lo_in[t] - 1));
      const __m256i le_hi_in = _mm256_cmpgt_epi32(_mm256_set1_epi32(hi_in[t] + 1), q);
      const __m256i dim_in = _mm256_and_si256(ge_lo_in, le_hi_in);
      const __m256i lt_lo_out = _mm256_cmpgt_epi32(_mm256_set1_epi32(lo_out[t]), q);
      const __m256i gt_hi_out = _mm256_cmpgt_epi32(q, _mm256_set1_epi32(hi_out[t]));
      const __m256i dim_out = _mm256_or_si256(lt_lo_out, gt_hi_out);
      all_in &= static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(dim_in)));
      any_out |= static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(dim_out)));
      if (any_out == 0xFFu) break;  // every lane already rejected
    }
    const unsigned definite_in = all_in & ~any_out;
    const unsigned band = 0xFFu & ~definite_in & ~any_out;
    if (definite_in != 0) {
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kPack.perm[definite_in]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r.in_count),
                          _mm256_permutevar8x32_epi32(vid, perm));
      r.in_count += static_cast<std::size_t>(__builtin_popcount(definite_in));
    }
    unsigned band_mask = band;
    while (band_mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(band_mask));
      band_mask &= band_mask - 1;
      maybe[r.maybe_count++] = ids[i + lane];
    }
  }
  for (; i < n; ++i) {
    const std::uint32_t id = ids[i];
    bool in = true;
    for (std::size_t t = 0; t < dims; ++t) {
      if (std::fabs(cols[t * stride + id] - centre[t]) > radius) {
        in = false;
        break;
      }
    }
    if (in) out[r.in_count++] = id;
  }
  return r;
}

constexpr Ops kAvx2Ops = {
    "avx2",
    avx2_filter_in_window,
    avx2_minmax_ids,
    avx2_popcount_andnot,
    avx2_scan_open,
    avx2_targets_all_below,
    avx2_nsc_scan_rows,
    avx2_filter_in_radius,
};

}  // namespace

const Ops& avx2_ops() noexcept { return kAvx2Ops; }

}  // namespace acn::kernels
