// Fixed-point quantization of the [0,1]^{2d} joint coordinates.
//
// Every hot predicate of the pipeline is a one-dimensional interval test
// ("is coordinate x inside the window [lower, lower + 2r]?") or a min/max
// reduction over a column. The SIMD kernels (core/kernels/kernels.hpp) run
// those tests over quantized uint32 mirrors of the double columns — 8 lanes
// per 256-bit compare instead of 4 — and must still return byte-identical
// verdicts to the double path. The scheme that makes that provable:
//
//   Q(x) = floor(x * 2^30 + 0.5)   (evaluated in double, round-to-nearest)
//
// Multiplying by 2^30 is a pure exponent shift (exact); the +0.5 and the
// floor may round, but the composite map stays MONOTONE NON-DECREASING —
// rounding a monotone function to nearest is monotone, and floor is
// monotone. Monotonicity is the only property the kernels rely on:
//
//   Q(x) > Q(lower)  =>  x > lower   (strictly above the lower bound)
//   Q(x) < Q(lower)  =>  x < lower   (strictly below it)
//   Q(x) == Q(lower) =>  undecidable at this resolution
//
// so an integer lane compare classifies every coordinate as definitely-in,
// definitely-out, or on-the-boundary-band; the (measure-2^-30-rare) band
// lanes are re-resolved against the original doubles with the exact scalar
// predicate. The verdict is therefore byte-identical to the double path on
// ALL inputs — no representability assumption on r is needed. When the
// window width IS a multiple of 2^-30 (e.g. r = 0.03125, 2r = 2^-4), every
// boundary lands exactly on the grid and the tie band resolves the ties the
// way the double compare does, which the quantization property test pins.
//
// The scale 2^30 keeps every quantized coordinate in [0, 2^30] and every
// clamped bound in [-1, 2^30 + 1] — comfortably inside a SIGNED 32-bit
// lane, which is what AVX2's epi32 compares operate on.
#pragma once

#include <cmath>
#include <cstdint>

namespace acn::kernels {

inline constexpr unsigned kScaleBits = 30;
inline constexpr double kScale = static_cast<double>(1u << kScaleBits);
/// Q(1.0): the largest quantized value a unit-box coordinate can take.
inline constexpr std::int32_t kQMax = std::int32_t{1} << kScaleBits;

/// Monotone quantization of a coordinate in [0, 1].
[[nodiscard]] inline std::uint32_t quantize(double x) noexcept {
  return static_cast<std::uint32_t>(std::floor(x * kScale + 0.5));
}

/// The same map on an arbitrary (possibly out-of-[0,1]) window bound,
/// clamped so the result fits a signed 32-bit lane while comparing
/// correctly against every quantized coordinate: a bound below every
/// coordinate clamps to -1, above every coordinate to kQMax + 1 — neither
/// sentinel collides with a real Q(x), so clamped bounds never produce a
/// spurious boundary tie.
[[nodiscard]] inline std::int32_t quantize_bound(double y) noexcept {
  const double t = std::floor(y * kScale + 0.5);
  if (t < -1.0) return -1;
  if (t > static_cast<double>(kQMax) + 1.0) return kQMax + 1;
  return static_cast<std::int32_t>(t);
}

/// One window test, precomputed: the exact double bounds (for boundary-band
/// resolution) plus their quantized images (for the lane compares).
struct WindowBoundsQ {
  double lower = 0.0;
  double upper = 0.0;
  std::int32_t ql = 0;
  std::int32_t qu = 0;
};

[[nodiscard]] inline WindowBoundsQ window_bounds(double lower, double upper) noexcept {
  return WindowBoundsQ{lower, upper, quantize_bound(lower), quantize_bound(upper)};
}

/// Scalar reference membership test over a WindowBoundsQ — the exact double
/// predicate every kernel must reproduce. (The quantized fields are unused
/// here on purpose: this IS the double path.)
[[nodiscard]] inline bool in_window(double x, const WindowBoundsQ& b) noexcept {
  return x >= b.lower && x <= b.upper;
}

/// Slop margin for radius (Chebyshev-ball) prefilters. Q deviates from
/// x * 2^30 by strictly less than 1 (0.5 from the tie round plus the
/// rounding error of t + 0.5, bounded by 2^-22 for t <= 2^31), and the
/// bound c +- r itself is computed in double with relative error 2^-53. A
/// quantized gap of k therefore certifies a real-coordinate gap of at least
/// (k - 2) * 2^-30 - 2^-52. With k = kQSlop + 1 = 5 the certified gap
/// (~2.8e-9) dwarfs the <= 2^-52 rounding of the scalar fl(x - c), so
/// lanes strictly outside the +-kQSlop band are classified exactly; lanes
/// inside it fall back to the scalar Chebyshev test.
inline constexpr std::int32_t kQSlop = 4;

/// Prefilter band of one dimension of a Chebyshev ball |x - c| <= radius:
/// definitely-in when q in [lo_in, hi_in], definitely-out when q outside
/// [lo_out, hi_out], undecided otherwise.
struct RadiusBandQ {
  std::int32_t lo_in = 0;
  std::int32_t hi_in = 0;
  std::int32_t lo_out = 0;
  std::int32_t hi_out = 0;
};

[[nodiscard]] inline RadiusBandQ radius_band(double centre, double radius) noexcept {
  const std::int32_t qlo = quantize_bound(centre - radius);
  const std::int32_t qhi = quantize_bound(centre + radius);
  return RadiusBandQ{qlo + kQSlop, qhi - kQSlop, qlo - kQSlop, qhi + kQSlop};
}

}  // namespace acn::kernels
