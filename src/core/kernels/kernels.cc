#include "core/kernels/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace acn::kernels {

#ifdef ACN_HAVE_AVX2
const Ops& avx2_ops() noexcept;  // defined in kernels_avx2.cc
#endif

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels — the semantic ground truth. Each is the exact
// double-path loop it replaced, verbatim; the AVX2 table must match these
// byte-for-byte on every input (asserted per call in debug builds).

std::size_t scalar_filter_in_window(const std::uint32_t* /*qcol*/, const double* col,
                                    const std::uint32_t* ids, std::size_t n,
                                    const WindowBoundsQ& b, std::uint32_t* out) {
  std::size_t out_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t id = ids[i];
    const double x = col[id];
    if (x >= b.lower && x <= b.upper) out[out_n++] = id;
  }
  return out_n;
}

void scalar_minmax_ids(const double* col, const std::uint32_t* ids, std::size_t n,
                       double* lo, double* hi) {
  double l = col[ids[0]];
  double h = l;
  for (std::size_t i = 1; i < n; ++i) {
    const double x = col[ids[i]];
    if (x < l) l = x;
    if (x > h) h = x;
  }
  *lo = l;
  *hi = h;
}

std::uint64_t scalar_popcount_andnot(const std::uint64_t* a, const std::uint64_t* b,
                                     std::size_t words) {
  std::uint64_t count = 0;
  for (std::size_t k = 0; k < words; ++k) {
    count += static_cast<std::uint64_t>(std::popcount(a[k] & ~b[k]));
  }
  return count;
}

OpenScan scalar_scan_open(const std::uint64_t* base, const std::uint64_t* used,
                          const std::uint64_t* far, const std::uint64_t* l,
                          std::size_t words) {
  OpenScan r;
  std::uint64_t far_hit = 0;
  std::uint64_t l_hit = 0;
  for (std::size_t k = 0; k < words; ++k) {
    const std::uint64_t open = base[k] & ~used[k];
    r.open += static_cast<std::uint64_t>(std::popcount(open));
    far_hit |= open & far[k];
    l_hit |= open & l[k];
  }
  r.far_any = far_hit != 0;
  r.l_any = l_hit != 0;
  return r;
}

bool scalar_targets_all_below(const std::uint64_t* targets, std::size_t count,
                              std::size_t words, const std::uint64_t* used,
                              std::uint64_t tau) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t* row = targets + i * words;
    std::uint64_t survivors = 0;
    for (std::size_t k = 0; k < words; ++k) {
      survivors += static_cast<std::uint64_t>(std::popcount(row[k] & ~used[k]));
    }
    if (survivors >= tau) return false;
  }
  return true;
}

std::size_t scalar_nsc_scan_rows(const std::uint64_t* bases,
                                 const std::uint32_t* rows, std::size_t count,
                                 std::size_t words, const std::uint64_t* used,
                                 const std::uint64_t* far, const std::uint64_t* l,
                                 std::uint64_t tau, std::uint64_t* acc,
                                 std::uint32_t* out_rows) {
  std::size_t out_n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t* row = bases + rows[i] * words;
    const OpenScan scan = scalar_scan_open(row, used, far, l, words);
    if (scan.open <= tau || !scan.far_any || !scan.l_any) continue;
    for (std::size_t k = 0; k < words; ++k) acc[k] |= row[k];
    out_rows[out_n++] = rows[i];
  }
  return out_n;
}

RadiusFilter scalar_filter_in_radius(const std::uint32_t* /*qcols*/,
                                     const double* cols, std::size_t stride,
                                     std::size_t dims, const double* centre,
                                     double radius, const std::uint32_t* ids,
                                     std::size_t n, std::uint32_t* out,
                                     std::uint32_t* /*maybe*/) {
  RadiusFilter r;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t id = ids[i];
    bool in = true;
    for (std::size_t t = 0; t < dims; ++t) {
      if (std::fabs(cols[t * stride + id] - centre[t]) > radius) {
        in = false;
        break;
      }
    }
    if (in) out[r.in_count++] = id;
  }
  return r;
}

constexpr Ops kScalarOps = {
    "scalar",
    scalar_filter_in_window,
    scalar_minmax_ids,
    scalar_popcount_andnot,
    scalar_scan_open,
    scalar_targets_all_below,
    scalar_nsc_scan_rows,
    scalar_filter_in_radius,
};

// ---------------------------------------------------------------------------
// Counters: one cache-line block per thread, registered in a process-wide
// list of shared_ptrs so a snapshot can sum blocks of threads that already
// exited (worker lanes are persistent, but nothing here should care).

struct alignas(64) CounterBlock {
  std::atomic<std::uint64_t> v[9] = {};
};

enum CounterIndex : std::size_t {
  kFilterCalls,
  kFilterItems,
  kMinmaxCalls,
  kMinmaxItems,
  kPopcntCalls,
  kPopcntWords,
  kRadiusCalls,
  kRadiusItems,
  kCycles,
};

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<std::shared_ptr<CounterBlock>>& registry() {
  static std::vector<std::shared_ptr<CounterBlock>> blocks;
  return blocks;
}

CounterBlock* tls_counters() {
  thread_local CounterBlock* block = [] {
    auto owned = std::make_shared<CounterBlock>();
    CounterBlock* raw = owned.get();
    const std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(std::move(owned));
    return raw;
  }();
  return block;
}

inline void bump(CounterBlock* c, CounterIndex calls, CounterIndex items,
                 std::uint64_t n) {
  c->v[calls].fetch_add(1, std::memory_order_relaxed);
  c->v[items].fetch_add(n, std::memory_order_relaxed);
}

bool g_cycles_enabled = false;

inline std::uint64_t read_tsc() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return 0;
#endif
}

// ---------------------------------------------------------------------------
// Dispatch state. g_inner is the raw selected table; the public table wraps
// it with counting (and, in debug builds when AVX2 is selected, with a
// cross-check that replays every call on the scalar table and asserts
// byte-identical results — "every kernel asserts its verdict against the
// scalar path").

std::atomic<const Ops*> g_inner{nullptr};
std::atomic<bool> g_crosscheck{false};

const Ops* avx2_table() noexcept {
#ifdef ACN_HAVE_AVX2
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return &avx2_ops();
#endif
#endif
  return nullptr;
}

void select(const Ops* table) noexcept {
  g_inner.store(table, std::memory_order_release);
#ifndef NDEBUG
  g_crosscheck.store(table != &kScalarOps, std::memory_order_release);
#endif
}

void init_once() noexcept {
  static std::once_flag once;
  std::call_once(once, [] {
    g_cycles_enabled = [] {
      const char* env = std::getenv("ACN_KERNEL_CYCLES");
      return env != nullptr && env[0] == '1';
    }();
    const Ops* avx2 = avx2_table();
    const Ops* chosen = avx2 != nullptr ? avx2 : &kScalarOps;
    if (const char* env = std::getenv("ACN_KERNELS"); env != nullptr) {
      if (std::strcmp(env, "scalar") == 0) {
        chosen = &kScalarOps;
      } else if (std::strcmp(env, "avx2") == 0) {
        if (avx2 == nullptr) {
          std::fprintf(stderr,
                       "acn: ACN_KERNELS=avx2 requested but unavailable; "
                       "using scalar kernels\n");
        } else {
          chosen = avx2;
        }
      }
    }
    select(chosen);
  });
}

inline const Ops* inner() noexcept {
  const Ops* table = g_inner.load(std::memory_order_acquire);
  if (table == nullptr) {
    init_once();
    table = g_inner.load(std::memory_order_acquire);
  }
  return table;
}

#ifndef NDEBUG
thread_local std::vector<std::uint32_t> t_check_out;
thread_local std::vector<std::uint32_t> t_check_maybe;
#endif

std::size_t counted_filter_in_window(const std::uint32_t* qcol, const double* col,
                                     const std::uint32_t* ids, std::size_t n,
                                     const WindowBoundsQ& b, std::uint32_t* out) {
  CounterBlock* c = tls_counters();
  bump(c, kFilterCalls, kFilterItems, n);
  const std::uint64_t t0 = g_cycles_enabled ? read_tsc() : 0;
  const std::size_t count = inner()->filter_in_window(qcol, col, ids, n, b, out);
  if (g_cycles_enabled) c->v[kCycles].fetch_add(read_tsc() - t0, std::memory_order_relaxed);
#ifndef NDEBUG
  if (g_crosscheck.load(std::memory_order_acquire)) {
    t_check_out.resize(n);
    const std::size_t ref =
        scalar_filter_in_window(qcol, col, ids, n, b, t_check_out.data());
    assert(ref == count && "filter_in_window: SIMD/scalar count mismatch");
    assert(std::memcmp(t_check_out.data(), out, count * sizeof(std::uint32_t)) == 0 &&
           "filter_in_window: SIMD/scalar id mismatch");
  }
#endif
  return count;
}

void counted_minmax_ids(const double* col, const std::uint32_t* ids, std::size_t n,
                        double* lo, double* hi) {
  CounterBlock* c = tls_counters();
  bump(c, kMinmaxCalls, kMinmaxItems, n);
  const std::uint64_t t0 = g_cycles_enabled ? read_tsc() : 0;
  inner()->minmax_ids(col, ids, n, lo, hi);
  if (g_cycles_enabled) c->v[kCycles].fetch_add(read_tsc() - t0, std::memory_order_relaxed);
#ifndef NDEBUG
  if (g_crosscheck.load(std::memory_order_acquire)) {
    double rlo = 0.0;
    double rhi = 0.0;
    scalar_minmax_ids(col, ids, n, &rlo, &rhi);
    assert(rlo == *lo && rhi == *hi && "minmax_ids: SIMD/scalar mismatch");
  }
#endif
}

std::uint64_t counted_popcount_andnot(const std::uint64_t* a, const std::uint64_t* b,
                                      std::size_t words) {
  CounterBlock* c = tls_counters();
  bump(c, kPopcntCalls, kPopcntWords, words);
  const std::uint64_t t0 = g_cycles_enabled ? read_tsc() : 0;
  const std::uint64_t count = inner()->popcount_andnot(a, b, words);
  if (g_cycles_enabled) c->v[kCycles].fetch_add(read_tsc() - t0, std::memory_order_relaxed);
#ifndef NDEBUG
  if (g_crosscheck.load(std::memory_order_acquire)) {
    assert(scalar_popcount_andnot(a, b, words) == count &&
           "popcount_andnot: SIMD/scalar mismatch");
  }
#endif
  return count;
}

OpenScan counted_scan_open(const std::uint64_t* base, const std::uint64_t* used,
                           const std::uint64_t* far, const std::uint64_t* l,
                           std::size_t words) {
  CounterBlock* c = tls_counters();
  bump(c, kPopcntCalls, kPopcntWords, words);
  const std::uint64_t t0 = g_cycles_enabled ? read_tsc() : 0;
  const OpenScan r = inner()->scan_open(base, used, far, l, words);
  if (g_cycles_enabled) c->v[kCycles].fetch_add(read_tsc() - t0, std::memory_order_relaxed);
#ifndef NDEBUG
  if (g_crosscheck.load(std::memory_order_acquire)) {
    const OpenScan ref = scalar_scan_open(base, used, far, l, words);
    assert(ref.open == r.open && ref.far_any == r.far_any && ref.l_any == r.l_any &&
           "scan_open: SIMD/scalar mismatch");
  }
#endif
  return r;
}

bool counted_targets_all_below(const std::uint64_t* targets, std::size_t count,
                               std::size_t words, const std::uint64_t* used,
                               std::uint64_t tau) {
  CounterBlock* c = tls_counters();
  bump(c, kPopcntCalls, kPopcntWords, count * words);
  const std::uint64_t t0 = g_cycles_enabled ? read_tsc() : 0;
  const bool below = inner()->targets_all_below(targets, count, words, used, tau);
  if (g_cycles_enabled) c->v[kCycles].fetch_add(read_tsc() - t0, std::memory_order_relaxed);
#ifndef NDEBUG
  if (g_crosscheck.load(std::memory_order_acquire)) {
    assert(scalar_targets_all_below(targets, count, words, used, tau) == below &&
           "targets_all_below: SIMD/scalar mismatch");
  }
#endif
  return below;
}

#ifndef NDEBUG
thread_local std::vector<std::uint64_t> t_check_acc;
thread_local std::vector<std::uint32_t> t_check_rows;
#endif

std::size_t counted_nsc_scan_rows(const std::uint64_t* bases,
                                  const std::uint32_t* rows, std::size_t count,
                                  std::size_t words, const std::uint64_t* used,
                                  const std::uint64_t* far, const std::uint64_t* l,
                                  std::uint64_t tau, std::uint64_t* acc,
                                  std::uint32_t* out_rows) {
  CounterBlock* c = tls_counters();
  bump(c, kPopcntCalls, kPopcntWords, count * words);
#ifndef NDEBUG
  t_check_acc.assign(acc, acc + words);
#endif
  const std::uint64_t t0 = g_cycles_enabled ? read_tsc() : 0;
  const std::size_t out_n = inner()->nsc_scan_rows(bases, rows, count, words, used,
                                                   far, l, tau, acc, out_rows);
  if (g_cycles_enabled) c->v[kCycles].fetch_add(read_tsc() - t0, std::memory_order_relaxed);
#ifndef NDEBUG
  if (g_crosscheck.load(std::memory_order_acquire)) {
    t_check_rows.resize(count);
    const std::size_t ref_n =
        scalar_nsc_scan_rows(bases, rows, count, words, used, far, l, tau,
                             t_check_acc.data(), t_check_rows.data());
    assert(ref_n == out_n && "nsc_scan_rows: SIMD/scalar count mismatch");
    assert(std::memcmp(t_check_rows.data(), out_rows,
                       out_n * sizeof(std::uint32_t)) == 0 &&
           "nsc_scan_rows: SIMD/scalar row mismatch");
    assert(std::memcmp(t_check_acc.data(), acc, words * sizeof(std::uint64_t)) == 0 &&
           "nsc_scan_rows: SIMD/scalar acc mismatch");
  }
#endif
  return out_n;
}

RadiusFilter counted_filter_in_radius(const std::uint32_t* qcols, const double* cols,
                                      std::size_t stride, std::size_t dims,
                                      const double* centre, double radius,
                                      const std::uint32_t* ids, std::size_t n,
                                      std::uint32_t* out, std::uint32_t* maybe) {
  CounterBlock* c = tls_counters();
  bump(c, kRadiusCalls, kRadiusItems, n);
  const std::uint64_t t0 = g_cycles_enabled ? read_tsc() : 0;
  const RadiusFilter r = inner()->filter_in_radius(qcols, cols, stride, dims, centre,
                                                   radius, ids, n, out, maybe);
  if (g_cycles_enabled) c->v[kCycles].fetch_add(read_tsc() - t0, std::memory_order_relaxed);
#ifndef NDEBUG
  if (g_crosscheck.load(std::memory_order_acquire)) {
    // The SIMD split (definite + slop band) must resolve to exactly the
    // scalar member set once the band is settled by the exact predicate.
    t_check_out.resize(n);
    t_check_maybe.clear();
    const RadiusFilter ref = scalar_filter_in_radius(
        qcols, cols, stride, dims, centre, radius, ids, n, t_check_out.data(), nullptr);
    t_check_maybe.assign(out, out + r.in_count);
    for (std::size_t i = 0; i < r.maybe_count; ++i) {
      const std::uint32_t id = maybe[i];
      bool in = true;
      for (std::size_t t = 0; t < dims; ++t) {
        if (std::fabs(cols[t * stride + id] - centre[t]) > radius) {
          in = false;
          break;
        }
      }
      if (in) t_check_maybe.push_back(id);
    }
    std::sort(t_check_maybe.begin(), t_check_maybe.end());
    std::sort(t_check_out.begin(), t_check_out.begin() + static_cast<std::ptrdiff_t>(ref.in_count));
    assert(ref.in_count == t_check_maybe.size() &&
           "filter_in_radius: SIMD/scalar member-count mismatch");
    assert(std::memcmp(t_check_out.data(), t_check_maybe.data(),
                       ref.in_count * sizeof(std::uint32_t)) == 0 &&
           "filter_in_radius: SIMD/scalar member-set mismatch");
  }
#endif
  return r;
}

const Ops kCountedOps = {
    "counted",
    counted_filter_in_window,
    counted_minmax_ids,
    counted_popcount_andnot,
    counted_scan_open,
    counted_targets_all_below,
    counted_nsc_scan_rows,
    counted_filter_in_radius,
};

}  // namespace

const Ops& dispatch() noexcept {
  init_once();
  return kCountedOps;
}

const Ops& dispatch_raw() noexcept {
  init_once();
#ifndef NDEBUG
  return kCountedOps;
#else
  return *g_inner.load(std::memory_order_acquire);
#endif
}

void counters_charge_popcnt(std::uint64_t calls, std::uint64_t words) noexcept {
#ifndef NDEBUG
  // dispatch_raw() hands out the counted table in debug builds; the wrappers
  // already charged these calls one by one.
  (void)calls;
  (void)words;
#else
  CounterBlock* c = tls_counters();
  c->v[kPopcntCalls].fetch_add(calls, std::memory_order_relaxed);
  c->v[kPopcntWords].fetch_add(words, std::memory_order_relaxed);
#endif
}

const char* dispatch_name() noexcept {
  init_once();
  return g_inner.load(std::memory_order_acquire)->name;
}

bool force(const char* name) noexcept {
  init_once();
  if (std::strcmp(name, "scalar") == 0) {
    select(&kScalarOps);
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    const Ops* avx2 = avx2_table();
    if (avx2 == nullptr) return false;
    select(avx2);
    return true;
  }
  if (std::strcmp(name, "auto") == 0) {
    const Ops* avx2 = avx2_table();
    select(avx2 != nullptr ? avx2 : &kScalarOps);
    return true;
  }
  return false;
}

bool avx2_available() noexcept { return avx2_table() != nullptr; }

Counters counters_snapshot() noexcept {
  Counters total;
  const std::lock_guard<std::mutex> lock(registry_mutex());
  for (const auto& block : registry()) {
    total.filter_calls += block->v[kFilterCalls].load(std::memory_order_relaxed);
    total.filter_items += block->v[kFilterItems].load(std::memory_order_relaxed);
    total.minmax_calls += block->v[kMinmaxCalls].load(std::memory_order_relaxed);
    total.minmax_items += block->v[kMinmaxItems].load(std::memory_order_relaxed);
    total.popcnt_calls += block->v[kPopcntCalls].load(std::memory_order_relaxed);
    total.popcnt_words += block->v[kPopcntWords].load(std::memory_order_relaxed);
    total.radius_calls += block->v[kRadiusCalls].load(std::memory_order_relaxed);
    total.radius_items += block->v[kRadiusItems].load(std::memory_order_relaxed);
    total.cycles += block->v[kCycles].load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace acn::kernels
