// Runtime-dispatched hot-path kernels over the quantized coordinate mirror.
//
// The three inner loops the profile is made of — the canonical-window slide
// filter, the bounding-box min/max reduction, and the Theorem-7 survivor
// popcounts — are routed through this narrow table. Two implementations
// exist: a scalar reference (always compiled, the semantic ground truth)
// and an AVX2 variant (compiled when ACN_SIMD is on, selected at startup
// via CPUID). Every AVX2 kernel is byte-identical to the scalar one by
// construction (see quantize.hpp for the boundary-band argument), and in
// debug builds the dispatcher installs cross-checking wrappers that run
// BOTH paths and assert equality on every single call.
//
// Selection order: ACN_KERNELS env var ("scalar"/"avx2") > force() test
// hook > CPUID. The choice is made once and cached; force() exists so the
// equivalence tests can pin either path in-process.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/kernels/quantize.hpp"

namespace acn::kernels {

/// Result of the fused subtree-bound scan: popcount of open = base & ~used
/// plus "does open intersect far / l" flags.
struct OpenScan {
  std::uint64_t open = 0;
  bool far_any = false;
  bool l_any = false;
};

/// Result of the Chebyshev-ball prefilter: `in_count` ids written to `out`
/// are definitely inside the ball, `maybe_count` ids written to `maybe` sit
/// in the quantization slop band and must be resolved by the caller with
/// the exact scalar distance. (The scalar kernel resolves everything itself
/// and always returns maybe_count == 0.)
struct RadiusFilter {
  std::size_t in_count = 0;
  std::size_t maybe_count = 0;
};

/// The kernel table. All functions are stateless and thread-safe.
struct Ops {
  const char* name;  ///< "scalar" or "avx2"

  /// Writes to `out` (capacity >= n) the ids whose coordinate col[id] lies
  /// in [b.lower, b.upper], preserving input order; returns the count.
  /// `qcol` is the quantize() image of `col` (same indexing).
  std::size_t (*filter_in_window)(const std::uint32_t* qcol, const double* col,
                                  const std::uint32_t* ids, std::size_t n,
                                  const WindowBoundsQ& b, std::uint32_t* out);

  /// Exact min/max of col[ids[i]] over i < n (n >= 1). Min/max of doubles
  /// is exact and order-independent, so this matches any scalar scan.
  void (*minmax_ids)(const double* col, const std::uint32_t* ids, std::size_t n,
                     double* lo, double* hi);

  /// Sum of popcount(a[k] & ~b[k]) over k < words — the Theorem-7 survivor
  /// count (target members not yet removed).
  std::uint64_t (*popcount_andnot)(const std::uint64_t* a, const std::uint64_t* b,
                                   std::size_t words);

  /// Fused scan of one base against the used set: open = base & ~used,
  /// returns popcount(open) and whether open intersects far / l.
  OpenScan (*scan_open)(const std::uint64_t* base, const std::uint64_t* used,
                        const std::uint64_t* far, const std::uint64_t* l,
                        std::size_t words);

  /// Batched relation-(4) test over a row-major bitset matrix (`count` rows
  /// of `words` words): true iff EVERY row keeps fewer than `tau` set bits
  /// outside `used`. One call per search node replaces a per-target call —
  /// the dominating dispatch overhead of the Theorem-7 DFS.
  bool (*targets_all_below)(const std::uint64_t* targets, std::size_t count,
                            std::size_t words, const std::uint64_t* used,
                            std::uint64_t tau);

  /// Usability scan + achievable accumulation of the Theorem-7 DFS, one
  /// call per node. For each row index r of `rows` (ascending), scan_open
  /// bases[r * words ..] against `used`; usable rows (more than `tau` open
  /// bits, an open far bit, an open L bit) are OR-ed into `acc` and their
  /// index appended to `out_rows` (capacity >= count, order preserved).
  /// Returns the number written. The caller seeds `acc` with `used`;
  /// afterwards acc = used | OR(usable bases) is the exact achievable set
  /// of the subtree, and the surviving list is a valid candidate filter for
  /// every descendant (open sets only shrink as `used` grows).
  std::size_t (*nsc_scan_rows)(const std::uint64_t* bases,
                               const std::uint32_t* rows, std::size_t count,
                               std::size_t words, const std::uint64_t* used,
                               const std::uint64_t* far, const std::uint64_t* l,
                               std::uint64_t tau, std::uint64_t* acc,
                               std::uint32_t* out_rows);

  /// Chebyshev-ball prefilter over the joint columns: classifies each id of
  /// `ids` against max_t |cols[t][id] - centre[t]| <= radius using the
  /// quantized mirror (qcols, same [dim][device] layout with row stride
  /// `stride`). Definite members go to `out`, slop-band ids to `maybe` (both
  /// capacity >= n, input order preserved within each).
  RadiusFilter (*filter_in_radius)(const std::uint32_t* qcols, const double* cols,
                                   std::size_t stride, std::size_t dims,
                                   const double* centre, double radius,
                                   const std::uint32_t* ids, std::size_t n,
                                   std::uint32_t* out, std::uint32_t* maybe);
};

/// The selected table (cached after the first call).
[[nodiscard]] const Ops& dispatch() noexcept;

/// The selected table WITHOUT the counting wrappers — for call-sites that
/// make hundreds of thousands of kernel calls per frame (the Theorem-7
/// search) where two relaxed atomic adds plus an indirect call per kernel
/// call are measurable. Such callers charge the counters in bulk through
/// counters_charge_popcnt(). Debug builds return the counted table anyway so
/// every call still cross-checks SIMD against scalar (and charge_popcnt
/// becomes a no-op to avoid double counting).
[[nodiscard]] const Ops& dispatch_raw() noexcept;

/// Bulk counter charge paired with dispatch_raw(): adds `calls` popcount-
/// class kernel calls totalling `words` words to this thread's counters.
void counters_charge_popcnt(std::uint64_t calls, std::uint64_t words) noexcept;

/// Name of the selected table ("scalar" or "avx2").
[[nodiscard]] const char* dispatch_name() noexcept;

/// Test hook: pin the dispatch to "scalar" or "avx2", or back to "auto".
/// Returns false (and leaves the dispatch unchanged) when the requested
/// variant is not available in this build/CPU.
bool force(const char* name) noexcept;

/// True when the AVX2 table is compiled in AND the CPU supports it.
[[nodiscard]] bool avx2_available() noexcept;

/// Per-kernel invocation/volume counters, accumulated thread-locally and
/// summed over every thread that ever ran a kernel (worker lanes included).
/// `cycles` totals rdtsc ticks spent inside kernels when ACN_KERNEL_CYCLES=1
/// was set at startup (zero otherwise — the default keeps the hot path free
/// of timestamp reads).
struct Counters {
  std::uint64_t filter_calls = 0;
  std::uint64_t filter_items = 0;
  std::uint64_t minmax_calls = 0;
  std::uint64_t minmax_items = 0;
  std::uint64_t popcnt_calls = 0;
  std::uint64_t popcnt_words = 0;
  std::uint64_t radius_calls = 0;
  std::uint64_t radius_items = 0;
  std::uint64_t cycles = 0;

  Counters operator-(const Counters& o) const noexcept {
    Counters d;
    d.filter_calls = filter_calls - o.filter_calls;
    d.filter_items = filter_items - o.filter_items;
    d.minmax_calls = minmax_calls - o.minmax_calls;
    d.minmax_items = minmax_items - o.minmax_items;
    d.popcnt_calls = popcnt_calls - o.popcnt_calls;
    d.popcnt_words = popcnt_words - o.popcnt_words;
    d.radius_calls = radius_calls - o.radius_calls;
    d.radius_items = radius_items - o.radius_items;
    d.cycles = cycles - o.cycles;
    return d;
  }
};

/// Snapshot of the process-wide kernel counters (sums all threads).
[[nodiscard]] Counters counters_snapshot() noexcept;

}  // namespace acn::kernels
