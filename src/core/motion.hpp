// r-consistency predicates (Definitions 1-4).
//
// All predicates reduce to bounding-box side checks in the joint space: a
// set B has an r-consistent motion in [k-1, k] iff the bounding box of its
// joint positions has side <= 2r in every one of the 2d dimensions.
#pragma once

#include <span>

#include "common/device_set.hpp"
#include "core/point.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace acn {

/// Mutable bounding box in the joint space; the workhorse of motion checks.
class JointBox {
 public:
  explicit JointBox(std::size_t joint_dim) noexcept;

  void add(const Point& joint_position) noexcept;
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Largest per-dimension extent (0 when the box holds < 2 points).
  [[nodiscard]] double side() const noexcept;

  /// True if every dimension extent is <= window.
  [[nodiscard]] bool within(double window) const noexcept;

  /// True if the box would still satisfy within(window) after add(p).
  [[nodiscard]] bool would_fit(const Point& joint_position, double window) const noexcept;

 private:
  std::array<double, Point::kMaxDim> lo_{};
  std::array<double, Point::kMaxDim> hi_{};
  std::size_t dim_ = 0;
  std::size_t count_ = 0;
};

/// Definition 1: B is r-consistent at one instant (diameter <= 2r there).
[[nodiscard]] bool is_r_consistent(const Snapshot& snapshot, const DeviceSet& set,
                                   double r);

/// Definition 3: B has an r-consistent motion in [k-1, k] (both instants).
[[nodiscard]] bool has_consistent_motion(const StatePair& state, const DeviceSet& set,
                                         double r);

/// Chebyshev diameter of the set in the joint space (max over both instants).
[[nodiscard]] double joint_diameter(const StatePair& state, const DeviceSet& set);

/// True iff set-with-extra still has an r-consistent motion. Cheaper than
/// materializing the union. `extra` may already belong to the set.
[[nodiscard]] bool motion_with_extra(const StatePair& state, const DeviceSet& set,
                                     DeviceId extra, double r);

/// Definition 4 helpers: a motion is tau-dense iff it has more than tau
/// members, tau-sparse otherwise. (Callers must ensure the set is a motion.)
[[nodiscard]] inline bool is_dense(const DeviceSet& set, std::uint32_t tau) noexcept {
  return set.size() > tau;
}

/// Definition 2/3 maximality: no abnormal device outside the set can join it
/// while keeping an r-consistent motion. `universe` is the candidate pool
/// (typically A_k or the not-yet-partitioned remainder of A_k).
[[nodiscard]] bool is_maximal_motion_in(const StatePair& state, const DeviceSet& set,
                                        std::span<const DeviceId> universe, double r);

}  // namespace acn
