// ShardMap: the spatial partition behind the sharded streaming engine.
//
// The paper's locality result (§V, Corollary 8) bounds every verdict to the
// 4r-closure of the deciding device, so the engine's hot path decomposes
// spatially: partition [0,1]^d into per-core regions and let each worker
// lane own the grid cells — and the staged re-bucketing work — of its own
// region. The ShardMap is that partition: it assigns every grid cell to a
// shard by striping the FIRST QoS dimension's cell index round-robin across
// the shard count. Striping (rather than contiguous blocks) keeps the
// assignment independent of the fleet's extent, balances uniform fleets to
// within one stripe, and gives the halo-exchange step a closed form: a
// query of radius R touches at most 2*ceil(R/cell)+1 stripes around the
// centre cell, i.e. that many neighbour shards.
//
// The map is pure arithmetic over the same cell geometry every grid in the
// project uses (floor(x / cell), see grid_index) — no state, no locks —
// so routing a staged move and resolving a halo read agree by construction.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/point.hpp"

namespace acn {

class ShardMap {
 public:
  /// `cell` is the grid cell side (> 0), `shards` the shard count (>= 1).
  ShardMap(double cell, unsigned shards) noexcept
      : cell_(cell), shards_(shards == 0 ? 1 : shards) {}

  [[nodiscard]] unsigned shards() const noexcept { return shards_; }
  [[nodiscard]] double cell() const noexcept { return cell_; }

  /// Shard owning the cell whose first-dimension cell index is `cell0`.
  /// Positions live in [0,1]^d, so cell0 >= 0 always; the signed parameter
  /// keeps halo scans (centre - reach) well-defined at the space boundary.
  [[nodiscard]] unsigned shard_of_cell(std::int64_t cell0) const noexcept {
    const std::int64_t s = cell0 % static_cast<std::int64_t>(shards_);
    return static_cast<unsigned>(s < 0 ? s + static_cast<std::int64_t>(shards_) : s);
  }

  /// Shard owning the cell containing `position` (by its CURRENT-snapshot
  /// coordinates — the same convention every grid build uses).
  [[nodiscard]] unsigned shard_of(const Point& position) const noexcept {
    return shard_of_cell(static_cast<std::int64_t>(std::floor(position[0] / cell_)));
  }

  /// Number of distinct shards a query of `radius` around any centre can
  /// touch: the centre stripe plus `reach` stripes each side, capped at the
  /// shard count. The engine sizes halo reads with this.
  [[nodiscard]] unsigned halo_width(double radius) const noexcept {
    const auto reach = static_cast<std::uint64_t>(std::ceil(radius / cell_));
    const std::uint64_t stripes = 2 * reach + 1;
    return static_cast<unsigned>(
        stripes < shards_ ? stripes : static_cast<std::uint64_t>(shards_));
  }

 private:
  double cell_;
  unsigned shards_;
};

}  // namespace acn
