#include "core/report.hpp"

#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace acn {

std::string CharacterizationReport::to_text() const {
  std::ostringstream os;
  os << "abnormal: " << decisions.size() << "  massive: " << sets.massive.size()
     << "  isolated: " << sets.isolated.size()
     << "  unresolved: " << sets.unresolved.size() << "\n";
  Table table({"device", "class", "rule", "exact", "|M(j)|", "|W(j)|", "collections"});
  for (const auto& [device, decision] : decisions) {
    table.add_row({std::to_string(device), to_string(decision.cls),
                   to_string(decision.rule), decision.exact ? "yes" : "no",
                   std::to_string(decision.maximal_motion_count),
                   std::to_string(decision.dense_motion_count),
                   std::to_string(decision.collections_tested)});
  }
  os << table.to_string();
  return os.str();
}

std::string CharacterizationReport::to_csv() const {
  CsvWriter csv({"device", "class", "rule", "exact", "maximal_motions",
                 "dense_motions", "collections_tested"});
  for (const auto& [device, decision] : decisions) {
    csv.add_row({std::to_string(device), to_string(decision.cls),
                 to_string(decision.rule), decision.exact ? "1" : "0",
                 std::to_string(decision.maximal_motion_count),
                 std::to_string(decision.dense_motion_count),
                 std::to_string(decision.collections_tested)});
  }
  return csv.to_string();
}

CharacterizationReport make_report(const StatePair& state, Params params,
                                   CharacterizeOptions options) {
  CharacterizationReport report;
  Characterizer characterizer(state, params, options);
  for (const DeviceId j : state.abnormal()) {
    const Decision decision = characterizer.characterize(j);
    report.decisions.emplace(j, decision);
    switch (decision.cls) {
      case AnomalyClass::kIsolated:
        report.sets.isolated = report.sets.isolated.with(j);
        break;
      case AnomalyClass::kMassive:
        report.sets.massive = report.sets.massive.with(j);
        break;
      case AnomalyClass::kUnresolved:
        report.sets.unresolved = report.sets.unresolved.with(j);
        break;
    }
  }
  return report;
}

}  // namespace acn
