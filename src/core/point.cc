#include "core/point.hpp"

#include <cmath>
#include <stdexcept>

namespace acn {

Point::Point(std::span<const double> coords) {
  if (coords.empty() || coords.size() > kMaxDim) {
    throw std::invalid_argument("Point: dimension must be in [1, " +
                                std::to_string(kMaxDim) + "], got " +
                                std::to_string(coords.size()));
  }
  dim_ = coords.size();
  for (std::size_t i = 0; i < dim_; ++i) coords_[i] = coords[i];
}

Point::Point(std::initializer_list<double> coords)
    : Point(std::span<const double>(coords.begin(), coords.size())) {}

Point Point::zero(std::size_t dim) {
  if (dim == 0 || dim > kMaxDim) {
    throw std::invalid_argument("Point::zero: bad dimension");
  }
  Point p;
  p.dim_ = dim;
  return p;
}

bool Point::in_unit_box() const noexcept {
  for (std::size_t i = 0; i < dim_; ++i) {
    if (coords_[i] < 0.0 || coords_[i] > 1.0) return false;
  }
  return true;
}

Point Point::concat(const Point& a, const Point& b) {
  if (a.dim() + b.dim() > kMaxDim) {
    throw std::invalid_argument("Point::concat: joint dimension too large");
  }
  Point p;
  p.dim_ = a.dim() + b.dim();
  for (std::size_t i = 0; i < a.dim(); ++i) p.coords_[i] = a[i];
  for (std::size_t i = 0; i < b.dim(); ++i) p.coords_[a.dim() + i] = b[i];
  return p;
}

double chebyshev(const Point& a, const Point& b) noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < a.dim_; ++i) {
    const double delta = std::fabs(a.coords_[i] - b.coords_[i]);
    if (delta > best) best = delta;
  }
  return best;
}

std::string Point::to_string() const {
  std::string s = "(";
  for (std::size_t i = 0; i < dim_; ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(coords_[i]);
  }
  s += ")";
  return s;
}

bool operator==(const Point& a, const Point& b) noexcept {
  if (a.dim_ != b.dim_) return false;
  for (std::size_t i = 0; i < a.dim_; ++i) {
    if (a.coords_[i] != b.coords_[i]) return false;
  }
  return true;
}

}  // namespace acn
