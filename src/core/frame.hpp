// The locality-bounded incremental snapshot pipeline (the streaming engine).
//
// The seed pipeline paid O(n) work per interval before a single theorem
// ran: OnlineMonitor copied the incoming snapshot for its retained state,
// StatePair recomputed every joint coordinate and SoA column from scratch,
// and a fresh GridIndex re-bucketed A_k — every step, for every device.
// The paper's locality result (§V, Corollary 8: a verdict depends only on
// trajectories within 4r of the deciding device) licenses the opposite
// architecture, which this engine implements:
//
//   * SnapshotRing double-buffers the rolling StatePair: the new snapshot
//     is MOVED in, the old current snapshot becomes the previous one by
//     move, and the joint/SoA columns are rewritten in place only where a
//     trajectory changed — per-interval cost tracks |moved|, i.e. the
//     devices errors displaced, not n;
//   * the fleet grid is sharded spatially (ShardMap stripes of [0,1]^d,
//     sized to the worker count) and maintained incrementally: only devices
//     whose grid cell key changed are re-bucketed, via a serial
//     halo-exchange pass routing each move's bucket edits to the owner
//     shards' staging queues followed by a lock-free per-shard parallel
//     apply; 4r queries read neighbour shards' between-interval-immutable
//     maps directly;
//   * the MotionPlane is built over exactly the 4r-closure of A_k — the
//     plane covers A_k, each device's neighbourhood is the A_k-restricted
//     2r-ball from the fleet grid, and every Theorem 5/6/7 decision reads
//     only those neighbourhoods and their neighbours' families (the 4r
//     shell); nothing beyond the closure is ever touched. The
//     per-component family enumeration and the per-device characterization
//     both fan out over the engine's persistent WorkerPool;
//   * verdicts are byte-identical to a from-scratch rebuild
//     (tests/core/frame_equivalence_test.cc sweeps this, teleports and
//     all-abnormal edge cases included).
//
// OnlineMonitor, the MonitoringSwarm, and the simulation harness all sit on
// top of this engine; per-phase timings are exposed through FrameStats and
// reported by bench_characterize_all.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/device_set.hpp"
#include "common/worker_pool.hpp"
#include "core/characterizer.hpp"
#include "core/grid_index.hpp"
#include "core/kernels/kernels.hpp"
#include "core/motion_plane.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace acn {

/// Rolling (S_{k-1}, S_k, A_k) double buffer. prime() installs the first
/// snapshot; each advance() moves the next one in and rolls the pair in
/// place (StatePair::advance), tracking which devices moved.
class SnapshotRing {
 public:
  [[nodiscard]] bool primed() const noexcept { return state_.has_value(); }

  /// Installs the first snapshot: the state becomes (S_0, S_0, {}) — no
  /// interval to characterize yet.
  void prime(Snapshot first);

  /// Rolls to the next interval; returns the devices whose current
  /// position changed (the fleet grid's re-bucket set). Requires primed().
  /// `pool`/`lane_ms` pass through to StatePair::advance (chunk-parallel
  /// roll, byte-identical for every pool size).
  const std::vector<DeviceId>& advance(Snapshot next, DeviceSet abnormal,
                                       WorkerPool* pool = nullptr,
                                       std::vector<double>* lane_ms = nullptr);

  /// Devices moved by the latest advance.
  [[nodiscard]] std::span<const DeviceId> moved() const noexcept { return moved_; }

  [[nodiscard]] const StatePair& state() const { return *state_; }

 private:
  std::optional<StatePair> state_;
  std::vector<DeviceId> moved_;
};

/// Busy-time aggregate over the worker lanes of one parallel phase. The
/// max/mean gap is the phase's skew: max is the wall-clock the phase paid,
/// mean is what perfect balance would have paid — bench_characterize_all
/// prints both per phase so load imbalance shows up as a number, not a
/// hunch. lanes == 0 means the phase ran without a fan-out this interval.
struct LaneBreakdown {
  double max_ms = 0.0;
  double mean_ms = 0.0;
  unsigned lanes = 0;

  [[nodiscard]] static LaneBreakdown of(std::span<const double> lane_ms) noexcept {
    LaneBreakdown out;
    out.lanes = static_cast<unsigned>(lane_ms.size());
    if (lane_ms.empty()) return out;
    double total = 0.0;
    for (const double ms : lane_ms) {
      total += ms;
      if (ms > out.max_ms) out.max_ms = ms;
    }
    out.mean_ms = total / static_cast<double>(lane_ms.size());
    return out;
  }
};

/// Wall-clock phase breakdown of one engine interval, in milliseconds —
/// what bench_characterize_all reports per phase.
struct FrameStats {
  double state_ms = 0.0;         ///< ring roll (joint/SoA in-place update)
  double grid_ms = 0.0;          ///< grid re-bucketing (staging + apply)
  double plane_ms = 0.0;         ///< motion-plane build over the 4r-closure
  double characterize_ms = 0.0;  ///< Theorems 5-7 over A_k
  /// The halo-exchange slice of grid_ms: the serial pass routing each move
  /// to its old/new owner shards' staging queues.
  double halo_ms = 0.0;
  std::size_t moved = 0;         ///< devices whose position changed
  std::size_t abnormal = 0;      ///< |A_k|
  std::size_t components = 0;    ///< 2r-interaction components enumerated
  std::size_t motions = 0;       ///< distinct maximal motions interned
  unsigned shards = 0;           ///< spatial shards of the fleet grid

  // Per-lane skew of each fan-out phase (see LaneBreakdown).
  LaneBreakdown state_lanes;        ///< ring-roll chunk fan-out
  LaneBreakdown grid_lanes;         ///< per-shard staged-op application
  LaneBreakdown plane_query_lanes;  ///< plane pass 1 (neighbourhood queries)
  LaneBreakdown plane_enum_lanes;   ///< plane pass 2 (component enumeration)
  LaneBreakdown characterize_lanes; ///< per-device decision fan-out

  /// SIMD-kernel invocation/volume deltas of this interval (all lanes
  /// summed; see kernels::Counters — cycles stays 0 unless
  /// ACN_KERNEL_CYCLES=1 was set at startup).
  kernels::Counters kernel;

  /// Sum of the phase timers: the engine-side wall clock of one interval
  /// (halo_ms is a slice of grid_ms, so it is not added again).
  [[nodiscard]] double total_ms() const noexcept {
    return state_ms + grid_ms + plane_ms + characterize_ms;
  }
};

/// A closed interval as handed down from the ingestion layer: the
/// materialized snapshot, the abnormal set, and the ingest-quality marker.
/// `degraded` is metadata — it never changes what is computed, it travels
/// with the interval so every consumer of the verdicts knows the lateness
/// budget or the overload policy clipped the inputs (shed claims, deferred
/// devices, a forced early close). The watermark pipeline (src/ingest)
/// produces these; OnlineMonitor forwards them here.
struct SealedFrame {
  std::uint64_t interval = 0;
  Snapshot positions;
  DeviceSet abnormal;
  bool degraded = false;
};

/// The streaming engine: feed one snapshot per interval, read verdicts.
class FrameEngine {
 public:
  struct Config {
    Params model;
    /// Options for every per-device decision; characterize.parallel_grain
    /// is the |A_k| below which the characterization fan-out runs inline
    /// (the one threshold, shared with the standalone batch APIs).
    CharacterizeOptions characterize;
    /// Lanes for every per-interval fan-out (ring roll, staged grid apply,
    /// plane build, per-device characterization): 1 = inline serial
    /// (default), 0 = hardware concurrency. Verdicts are identical for
    /// every value.
    unsigned threads = 1;
    /// Component count below which the plane build runs inline.
    std::size_t component_fanout = 2;
    /// Spatial shards of the fleet grid (ShardMap stripes): 0 sizes the
    /// partition to the worker count (the per-core-cell default), any other
    /// value pins it. Verdicts are byte-identical for every shard count —
    /// sharding moves bucket ownership, never query results.
    unsigned shards = 0;
    /// Byte cap on the per-interval motion-plane arenas (neighbourhoods,
    /// window covers, interned motions, membership bitsets). An adversarial
    /// placement can make the motion-family arenas combinatorially large;
    /// the cap turns that from an OOM kill into an ArenaBudgetExceeded
    /// thrown out of observe() with the engine state untouched — the next
    /// interval proceeds normally. 0 disables the cap.
    std::uint64_t plane_arena_budget = 8ULL << 30;
  };

  /// Per-interval verdicts (absent for the priming snapshot).
  struct Result {
    std::vector<Decision> decisions;  ///< one per device of A_k, ascending
    CharacterizationSets sets;
  };

  explicit FrameEngine(Config config);

  /// Feeds the snapshot of the next interval (moved in, never copied) and
  /// characterizes every device of `abnormal` against the previous one.
  /// Returns std::nullopt for the first (priming) snapshot. Throws
  /// std::invalid_argument if the fleet size or dimension changes — the
  /// engine's device universe is fixed (StatePair::advance precondition);
  /// deployments with churn feed it through FleetRoster, which recycles
  /// slots inside a fixed capacity instead of resizing the snapshot.
  std::optional<Result> observe(Snapshot positions, DeviceSet abnormal);

  /// Sealed-frame handoff from the ingestion layer: same contract, the
  /// frame's snapshot and abnormal set are moved in. The degraded marker
  /// does not influence the computation (see SealedFrame).
  std::optional<Result> observe(SealedFrame frame) {
    return observe(std::move(frame.positions), std::move(frame.abnormal));
  }

  /// The rolling state (requires at least one observe()).
  [[nodiscard]] const StatePair& state() const { return ring_.state(); }
  [[nodiscard]] bool primed() const noexcept { return ring_.primed(); }

  /// The last interval's motion plane (null before the second observe()).
  [[nodiscard]] const MotionPlane* plane() const noexcept {
    return plane_.has_value() ? &*plane_ : nullptr;
  }

  /// Phase breakdown of the latest observe().
  [[nodiscard]] const FrameStats& last_stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t intervals() const noexcept { return intervals_; }

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] WorkerPool& pool() noexcept { return pool_; }

 private:
  /// NeighbourSource over the fleet grid restricted to the abnormal mask.
  class AbnormalSource final : public NeighbourSource {
   public:
    AbnormalSource(const FrameEngine& engine) : engine_(engine) {}
    void within_into(DeviceId j, double radius,
                     std::vector<DeviceId>& out) const override {
      engine_.grid_.within_into(engine_.ring_.state(), j, radius,
                                engine_.abnormal_flag_, out);
    }

   private:
    const FrameEngine& engine_;
  };

  Config config_;
  SnapshotRing ring_;
  WorkerPool pool_;          ///< before grid_: its lane count sizes the shards
  ShardedFleetGrid grid_;
  AbnormalSource source_;
  std::vector<std::uint8_t> abnormal_flag_;  ///< byte per device, A_k mask
  std::optional<MotionPlane> plane_;         ///< rebuilt per interval
  FrameStats stats_;
  std::uint64_t intervals_ = 0;
};

}  // namespace acn
