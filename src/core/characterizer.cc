#include "core/characterizer.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "core/motion.hpp"

namespace acn {

Characterizer::Characterizer(const StatePair& state, Params params,
                             CharacterizeOptions options)
    : state_(state), params_(params), options_(options), oracle_(state, params) {
  params_.validate();
}

Characterizer::Split Characterizer::split_neighbourhood(
    DeviceId j, const std::vector<DeviceSet>& dense_j) {
  Split split;
  for (const DeviceSet& motion : dense_j) split.d = split.d.set_union(motion);
  for (const DeviceId ell : split.d) {
    if (ell == j) {
      split.j = split.j.with(ell);  // j's own dense motions all contain j
      continue;
    }
    bool all_contain_j = true;
    for (const DeviceSet& motion : oracle_.dense_motions(ell)) {
      if (!motion.contains(j)) {
        all_contain_j = false;
        break;
      }
    }
    if (all_contain_j) {
      split.j = split.j.with(ell);
    } else {
      split.l = split.l.with(ell);
    }
  }
  return split;
}

Decision Characterizer::characterize(DeviceId j) {
  if (!state_.is_abnormal(j)) {
    throw std::invalid_argument("characterize: device " + std::to_string(j) +
                                " is not in A_k");
  }
  Decision decision;
  decision.maximal_motion_count = oracle_.maximal_motions(j).size();

  // Theorem 5: no dense motion containing j  =>  isolated.
  const std::vector<DeviceSet> dense_j = oracle_.dense_motions(j);
  decision.dense_motion_count = dense_j.size();
  if (dense_j.empty()) {
    decision.cls = AnomalyClass::kIsolated;
    decision.rule = DecisionRule::kTheorem5;
    return decision;
  }

  // Theorem 6 (Algorithm 3): some maximal dense motion of j intersects
  // J_k(j) in more than tau devices  =>  massive. (|M ∩ J| > tau gives the
  // dense motion M ∩ J ⊆ J_k(j) required by the theorem, and conversely any
  // dense B ⊆ J_k(j) extends to a maximal M in W-bar(j) with |M ∩ J| > tau.)
  const Split split = split_neighbourhood(j, dense_j);
  for (const DeviceSet& motion : dense_j) {
    if (motion.intersection_size(split.j) > params_.tau) {
      decision.cls = AnomalyClass::kMassive;
      decision.rule = DecisionRule::kTheorem6;
      return decision;
    }
  }

  if (!options_.run_full_nsc) {
    decision.cls = AnomalyClass::kUnresolved;
    decision.rule = DecisionRule::kTheorem6Only;
    return decision;
  }

  // Theorem 7 / Corollary 8 (Algorithms 4/5): search for a violating
  // collection; its existence certifies "unresolved", its absence "massive".
  const NscOutcome outcome = search_violating_collection(j, split.l);
  decision.collections_tested = outcome.nodes;
  if (outcome.exhausted) {
    decision.cls = AnomalyClass::kUnresolved;  // safe side: never over-claims
    decision.rule = DecisionRule::kBudgetExhausted;
    decision.exact = false;
  } else if (outcome.violating_found) {
    decision.cls = AnomalyClass::kUnresolved;
    decision.rule = DecisionRule::kCorollary8;
  } else {
    decision.cls = AnomalyClass::kMassive;
    decision.rule = DecisionRule::kTheorem7;
  }
  return decision;
}

Characterizer::NscOutcome Characterizer::search_violating_collection(
    DeviceId j, const DeviceSet& l) {
  NscOutcome outcome;

  // Every dense motion of j lives inside N(j) (its 2r-neighbourhood), so a
  // collection element can only influence relation (4) through members it
  // shares with N(j). A base with no such member is removable from any
  // violating collection (dropping it keeps not-(4): the surviving motions
  // of j are untouched), so it is pruned — exactly.
  const std::vector<DeviceId>& neighbours = oracle_.neighbourhood(j);
  const DeviceSet reach(std::vector<DeviceId>(neighbours.begin(), neighbours.end()));

  // Candidate base sets: maximal dense motions of L-neighbours avoiding j.
  std::vector<DeviceSet> bases;
  for (const DeviceId ell : l) {
    for (const DeviceSet& motion : oracle_.dense_motions(ell)) {
      if (!motion.contains(j) && motion.intersection_size(reach) > 0) {
        bases.push_back(motion);
      }
    }
  }
  std::sort(bases.begin(), bases.end());
  bases.erase(std::unique(bases.begin(), bases.end()), bases.end());

  // A set is usable in a violating collection only if it holds a device
  // farther than 2r from j (negation of relation (5)); precompute per id.
  const auto is_far = [&](DeviceId id) {
    return state_.joint_distance(j, id) > params_.window();
  };

  // Depth-first search over base sets; at each node the collection chosen so
  // far is tested against relation (4) via the oracle (memoized, early-exit).
  const std::function<bool(std::size_t, const DeviceSet&)> dfs =
      [&](std::size_t index, const DeviceSet& used) -> bool {
    if (outcome.exhausted) return false;
    ++outcome.nodes;
    if (outcome.nodes > options_.node_budget) {
      outcome.exhausted = true;
      return false;
    }
    // not-(4): no dense motion containing j survives outside `used` — the
    // collection built so far is violating (not-(5) held for each pick).
    if (!oracle_.has_dense_motion_avoiding(j, used)) return true;
    if (index == bases.size()) return false;

    // Branch 1: carve a qualifying subset out of this base's unused members
    // (tried before skipping: witnesses usually involve the early bases).
    // Subsets must be dense (> tau), contain a far device, an L-neighbour,
    // and a device of N(j) (the exact-effect prune above, member level).
    std::vector<DeviceId> avail;
    for (const DeviceId id : bases[index]) {
      if (id != j && !used.contains(id)) avail.push_back(id);
    }
    const std::size_t m = avail.size();
    if (m <= params_.tau) return dfs(index + 1, used);

    // Enumerate combinations per size, largest first (they prune relation
    // (4) fastest and any violating subset stays available at smaller
    // sizes). Each candidate combination is charged against the budget.
    for (std::size_t s = m; s > params_.tau; --s) {
      std::vector<std::size_t> pick(s);
      for (std::size_t i = 0; i < s; ++i) pick[i] = i;
      for (;;) {
        ++outcome.nodes;
        if (outcome.nodes > options_.node_budget) {
          outcome.exhausted = true;
          return false;
        }
        bool far_member = false;
        bool l_member = false;
        bool effect = false;
        std::vector<DeviceId> members;
        members.reserve(s);
        for (const std::size_t idx : pick) {
          const DeviceId id = avail[idx];
          members.push_back(id);
          far_member = far_member || is_far(id);
          l_member = l_member || l.contains(id);
          effect = effect || reach.contains(id);
        }
        if (far_member && l_member && effect) {
          if (dfs(index + 1, used.set_union(DeviceSet(std::move(members))))) {
            return true;
          }
          if (outcome.exhausted) return false;
        }
        // Next combination in lexicographic order.
        std::size_t i = s;
        while (i > 0 && pick[i - 1] == m - s + i - 1) --i;
        if (i == 0) break;
        ++pick[i - 1];
        for (std::size_t k = i; k < s; ++k) pick[k] = pick[k - 1] + 1;
      }
    }
    // Branch 2: skip this base set entirely.
    return dfs(index + 1, used);
  };

  outcome.violating_found = dfs(0, DeviceSet{});
  return outcome;
}

CharacterizationSets Characterizer::characterize_all() {
  CharacterizationSets sets;
  for (const DeviceId j : state_.abnormal()) {
    switch (characterize(j).cls) {
      case AnomalyClass::kIsolated:
        sets.isolated = sets.isolated.with(j);
        break;
      case AnomalyClass::kMassive:
        sets.massive = sets.massive.with(j);
        break;
      case AnomalyClass::kUnresolved:
        sets.unresolved = sets.unresolved.with(j);
        break;
    }
  }
  return sets;
}

DeviceSet Characterizer::neighbourhood_d(DeviceId j) {
  return split_neighbourhood(j, oracle_.dense_motions(j)).d;
}

DeviceSet Characterizer::neighbourhood_j(DeviceId j) {
  return split_neighbourhood(j, oracle_.dense_motions(j)).j;
}

DeviceSet Characterizer::neighbourhood_l(DeviceId j) {
  return split_neighbourhood(j, oracle_.dense_motions(j)).l;
}

}  // namespace acn
