#include "core/characterizer.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace acn {
namespace {

/// |a ∩ b| for two sorted id runs (motion members vs. a DeviceSet's ids).
std::size_t sorted_intersection_size(std::span<const DeviceId> a,
                                     std::span<const DeviceId> b) noexcept {
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t k = 0;
  while (i < a.size() && k < b.size()) {
    if (a[i] < b[k]) {
      ++i;
    } else if (b[k] < a[i]) {
      ++k;
    } else {
      ++count;
      ++i;
      ++k;
    }
  }
  return count;
}

}  // namespace

Characterizer::Characterizer(const StatePair& state, Params params,
                             CharacterizeOptions options)
    : owned_plane_(std::in_place, state, params),
      plane_(&*owned_plane_),
      options_(options),
      oracle_(*plane_) {}

Characterizer::Characterizer(const MotionPlane& plane, CharacterizeOptions options)
    : plane_(&plane), options_(options), oracle_(plane) {}

Characterizer::Split Characterizer::split_neighbourhood(DeviceId j) const {
  const MotionPlane& plane = *plane_;
  Split split;

  // D_k(j): union of the interned member runs of j's dense motions.
  std::vector<DeviceId> d_members;
  for (const MotionPlane::MotionId mid : plane.dense(j)) {
    const auto run = plane.members(mid);
    d_members.insert(d_members.end(), run.begin(), run.end());
  }
  std::sort(d_members.begin(), d_members.end());
  d_members.erase(std::unique(d_members.begin(), d_members.end()), d_members.end());

  // J/L split: ell joins J_k(j) iff every dense motion of ell contains j.
  std::vector<DeviceId> j_members;
  std::vector<DeviceId> l_members;
  for (const DeviceId ell : d_members) {
    if (ell == j) {
      j_members.push_back(ell);  // j's own dense motions all contain j
      continue;
    }
    bool all_contain_j = true;
    for (const MotionPlane::MotionId mid : plane.dense(ell)) {
      if (!plane.motion_contains(mid, j)) {
        all_contain_j = false;
        break;
      }
    }
    if (all_contain_j) {
      j_members.push_back(ell);
    } else {
      l_members.push_back(ell);
    }
  }
  split.d = DeviceSet::from_sorted(std::move(d_members));
  split.j = DeviceSet::from_sorted(std::move(j_members));
  split.l = DeviceSet::from_sorted(std::move(l_members));
  return split;
}

Decision Characterizer::characterize_with(MotionOracle& oracle, DeviceId j) const {
  const MotionPlane& plane = *plane_;
  if (!plane.covers(j)) {
    throw std::invalid_argument("characterize: device " + std::to_string(j) +
                                " is not in A_k");
  }
  Decision decision;
  decision.maximal_motion_count = plane.maximal(j).size();

  // Theorem 5: no dense motion containing j  =>  isolated.
  const auto dense_j = plane.dense(j);
  decision.dense_motion_count = dense_j.size();
  if (dense_j.empty()) {
    decision.cls = AnomalyClass::kIsolated;
    decision.rule = DecisionRule::kTheorem5;
    return decision;
  }

  // Theorem 6 (Algorithm 3): some maximal dense motion of j intersects
  // J_k(j) in more than tau devices  =>  massive. (|M ∩ J| > tau gives the
  // dense motion M ∩ J ⊆ J_k(j) required by the theorem, and conversely any
  // dense B ⊆ J_k(j) extends to a maximal M in W-bar(j) with |M ∩ J| > tau.)
  const Split split = split_neighbourhood(j);
  for (const MotionPlane::MotionId mid : dense_j) {
    if (sorted_intersection_size(plane.members(mid), split.j.ids()) >
        plane.params().tau) {
      decision.cls = AnomalyClass::kMassive;
      decision.rule = DecisionRule::kTheorem6;
      return decision;
    }
  }

  if (!options_.run_full_nsc) {
    decision.cls = AnomalyClass::kUnresolved;
    decision.rule = DecisionRule::kTheorem6Only;
    return decision;
  }

  // Theorem 7 / Corollary 8 (Algorithms 4/5): search for a violating
  // collection; its existence certifies "unresolved", its absence "massive".
  const NscOutcome outcome = search_violating_collection(oracle, j, split.l);
  decision.collections_tested = outcome.nodes;
  if (outcome.exhausted) {
    decision.cls = AnomalyClass::kUnresolved;  // safe side: never over-claims
    decision.rule = DecisionRule::kBudgetExhausted;
    decision.exact = false;
  } else if (outcome.violating_found) {
    decision.cls = AnomalyClass::kUnresolved;
    decision.rule = DecisionRule::kCorollary8;
  } else {
    decision.cls = AnomalyClass::kMassive;
    decision.rule = DecisionRule::kTheorem7;
  }
  return decision;
}

Decision Characterizer::characterize(DeviceId j) {
  return characterize_with(oracle_, j);
}

Characterizer::NscOutcome Characterizer::search_violating_collection(
    MotionOracle& oracle, DeviceId j, const DeviceSet& l) const {
  const MotionPlane& plane = *plane_;
  const StatePair& state = plane.state();
  const Params& params = plane.params();
  NscOutcome outcome;

  // Every dense motion of j lives inside N(j) (its 2r-neighbourhood), so a
  // collection element can only influence relation (4) through members it
  // shares with N(j). A base with no such member is removable from any
  // violating collection (dropping it keeps not-(4): the surviving motions
  // of j are untouched), so it is pruned — exactly.
  const auto neighbours = plane.neighbourhood(j);
  const DeviceSet reach = DeviceSet::from_sorted(
      std::vector<DeviceId>(neighbours.begin(), neighbours.end()));

  // Candidate base sets: maximal dense motions of L-neighbours avoiding j.
  // The plane's interning makes id-level dedup exact; sorting by member
  // sequence reproduces the deterministic lexicographic walk order.
  std::vector<MotionPlane::MotionId> bases;
  for (const DeviceId ell : l) {
    for (const MotionPlane::MotionId mid : plane.dense(ell)) {
      if (!plane.motion_contains(mid, j) &&
          sorted_intersection_size(plane.members(mid), reach.ids()) > 0) {
        bases.push_back(mid);
      }
    }
  }
  std::sort(bases.begin(), bases.end());
  bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
  std::sort(bases.begin(), bases.end(),
            [&](MotionPlane::MotionId a, MotionPlane::MotionId b) {
              const auto ra = plane.members(a);
              const auto rb = plane.members(b);
              return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(),
                                                  rb.end());
            });

  // A set is usable in a violating collection only if it holds a device
  // farther than 2r from j (negation of relation (5)); precompute per id.
  const auto is_far = [&](DeviceId id) {
    return state.joint_distance(j, id) > params.window();
  };

  // Depth-first search over base sets; at each node the collection chosen so
  // far is tested against relation (4) via the oracle (memoized, early-exit).
  const std::function<bool(std::size_t, const DeviceSet&)> dfs =
      [&](std::size_t index, const DeviceSet& used) -> bool {
    if (outcome.exhausted) return false;
    ++outcome.nodes;
    if (outcome.nodes > options_.node_budget) {
      outcome.exhausted = true;
      return false;
    }
    // not-(4): no dense motion containing j survives outside `used` — the
    // collection built so far is violating (not-(5) held for each pick).
    if (!oracle.has_dense_motion_avoiding(j, used)) return true;
    if (index == bases.size()) return false;

    // Branch 1: carve a qualifying subset out of this base's unused members
    // (tried before skipping: witnesses usually involve the early bases).
    // Subsets must be dense (> tau), contain a far device, an L-neighbour,
    // and a device of N(j) (the exact-effect prune above, member level).
    std::vector<DeviceId> avail;
    for (const DeviceId id : plane.members(bases[index])) {
      if (id != j && !used.contains(id)) avail.push_back(id);
    }
    const std::size_t m = avail.size();
    if (m <= params.tau) return dfs(index + 1, used);

    // Enumerate combinations per size, largest first (they prune relation
    // (4) fastest and any violating subset stays available at smaller
    // sizes). Each candidate combination is charged against the budget.
    for (std::size_t s = m; s > params.tau; --s) {
      std::vector<std::size_t> pick(s);
      for (std::size_t i = 0; i < s; ++i) pick[i] = i;
      for (;;) {
        ++outcome.nodes;
        if (outcome.nodes > options_.node_budget) {
          outcome.exhausted = true;
          return false;
        }
        bool far_member = false;
        bool l_member = false;
        bool effect = false;
        std::vector<DeviceId> members;
        members.reserve(s);
        for (const std::size_t idx : pick) {
          const DeviceId id = avail[idx];
          members.push_back(id);
          far_member = far_member || is_far(id);
          l_member = l_member || l.contains(id);
          effect = effect || reach.contains(id);
        }
        if (far_member && l_member && effect) {
          // `avail` is sorted and picks ascend, so `members` is sorted.
          if (dfs(index + 1,
                  used.set_union(DeviceSet::from_sorted(std::move(members))))) {
            return true;
          }
          if (outcome.exhausted) return false;
        }
        // Next combination in lexicographic order.
        std::size_t i = s;
        while (i > 0 && pick[i - 1] == m - s + i - 1) --i;
        if (i == 0) break;
        ++pick[i - 1];
        for (std::size_t k = i; k < s; ++k) pick[k] = pick[k - 1] + 1;
      }
    }
    // Branch 2: skip this base set entirely.
    return dfs(index + 1, used);
  };

  outcome.violating_found = dfs(0, DeviceSet{});
  return outcome;
}

std::vector<Decision> Characterizer::decide_all() {
  const DeviceSet& abnormal = plane_->state().abnormal();
  std::vector<Decision> decisions;
  decisions.reserve(abnormal.size());
  for (const DeviceId j : abnormal) {
    decisions.push_back(characterize_with(oracle_, j));
  }
  return decisions;
}

std::vector<Decision> Characterizer::decide_all_parallel(unsigned threads) {
  const DeviceSet& abnormal = plane_->state().abnormal();
  const std::size_t m = abnormal.size();
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, m));
  if (threads <= 1) return decide_all();

  std::vector<Decision> decisions(m);
  std::atomic<std::size_t> cursor{0};
  std::mutex failure_mutex;
  std::exception_ptr failure;

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      // Private view: memo tables are thread-local, the plane is shared
      // read-only. Slot writes are disjoint, so no result synchronization.
      MotionOracle oracle(*plane_);
      try {
        for (std::size_t i = cursor.fetch_add(1); i < m; i = cursor.fetch_add(1)) {
          decisions[i] = characterize_with(oracle, abnormal[i]);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        cursor.store(m);  // drain remaining work on all workers
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  if (failure) std::rethrow_exception(failure);
  return decisions;
}

CharacterizationSets Characterizer::bucket(
    const std::vector<Decision>& decisions) const {
  const DeviceSet& abnormal = plane_->state().abnormal();
  std::vector<DeviceId> isolated;
  std::vector<DeviceId> massive;
  std::vector<DeviceId> unresolved;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    switch (decisions[i].cls) {
      case AnomalyClass::kIsolated:
        isolated.push_back(abnormal[i]);
        break;
      case AnomalyClass::kMassive:
        massive.push_back(abnormal[i]);
        break;
      case AnomalyClass::kUnresolved:
        unresolved.push_back(abnormal[i]);
        break;
    }
  }
  CharacterizationSets sets;
  sets.isolated = DeviceSet::from_sorted(std::move(isolated));
  sets.massive = DeviceSet::from_sorted(std::move(massive));
  sets.unresolved = DeviceSet::from_sorted(std::move(unresolved));
  return sets;
}

CharacterizationSets Characterizer::characterize_all() { return bucket(decide_all()); }

CharacterizationSets Characterizer::characterize_all_parallel(unsigned threads) {
  return bucket(decide_all_parallel(threads));
}

DeviceSet Characterizer::neighbourhood_d(DeviceId j) {
  return split_neighbourhood(j).d;
}

DeviceSet Characterizer::neighbourhood_j(DeviceId j) {
  return split_neighbourhood(j).j;
}

DeviceSet Characterizer::neighbourhood_l(DeviceId j) {
  return split_neighbourhood(j).l;
}

}  // namespace acn
