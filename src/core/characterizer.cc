#include "core/characterizer.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "common/worker_pool.hpp"

namespace acn {
namespace {

/// |a ∩ b| for two sorted id runs (motion members vs. a DeviceSet's ids).
std::size_t sorted_intersection_size(std::span<const DeviceId> a,
                                     std::span<const DeviceId> b) noexcept {
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t k = 0;
  while (i < a.size() && k < b.size()) {
    if (a[i] < b[k]) {
      ++i;
    } else if (b[k] < a[i]) {
      ++k;
    } else {
      ++count;
      ++i;
      ++k;
    }
  }
  return count;
}

}  // namespace

Characterizer::Characterizer(const StatePair& state, Params params,
                             CharacterizeOptions options)
    : owned_plane_(std::in_place, state, params),
      plane_(&*owned_plane_),
      options_(options),
      oracle_(*plane_) {}

Characterizer::Characterizer(const MotionPlane& plane, CharacterizeOptions options)
    : plane_(&plane), options_(options), oracle_(plane) {}

Characterizer::Split Characterizer::split_neighbourhood(DeviceId j) const {
  const MotionPlane& plane = *plane_;
  Split split;

  // D_k(j): union of the interned member runs of j's dense motions.
  std::vector<DeviceId> d_members;
  for (const MotionPlane::MotionId mid : plane.dense(j)) {
    const auto run = plane.members(mid);
    d_members.insert(d_members.end(), run.begin(), run.end());
  }
  std::sort(d_members.begin(), d_members.end());
  d_members.erase(std::unique(d_members.begin(), d_members.end()), d_members.end());

  // J/L split: ell joins J_k(j) iff every dense motion of ell contains j.
  std::vector<DeviceId> j_members;
  std::vector<DeviceId> l_members;
  for (const DeviceId ell : d_members) {
    if (ell == j) {
      j_members.push_back(ell);  // j's own dense motions all contain j
      continue;
    }
    bool all_contain_j = true;
    for (const MotionPlane::MotionId mid : plane.dense(ell)) {
      if (!plane.motion_contains(mid, j)) {
        all_contain_j = false;
        break;
      }
    }
    if (all_contain_j) {
      j_members.push_back(ell);
    } else {
      l_members.push_back(ell);
    }
  }
  split.d = DeviceSet::from_sorted(std::move(d_members));
  split.j = DeviceSet::from_sorted(std::move(j_members));
  split.l = DeviceSet::from_sorted(std::move(l_members));
  return split;
}

Decision Characterizer::characterize_device(DeviceId j) const {
  const MotionPlane& plane = *plane_;
  if (!plane.covers(j)) {
    throw std::invalid_argument("characterize: device " + std::to_string(j) +
                                " is not in A_k");
  }
  Decision decision;
  decision.maximal_motion_count = plane.maximal(j).size();

  // Theorem 5: no dense motion containing j  =>  isolated.
  const auto dense_j = plane.dense(j);
  decision.dense_motion_count = dense_j.size();
  if (dense_j.empty()) {
    decision.cls = AnomalyClass::kIsolated;
    decision.rule = DecisionRule::kTheorem5;
    return decision;
  }

  // Theorem 6 (Algorithm 3): some maximal dense motion of j intersects
  // J_k(j) in more than tau devices  =>  massive. (|M ∩ J| > tau gives the
  // dense motion M ∩ J ⊆ J_k(j) required by the theorem, and conversely any
  // dense B ⊆ J_k(j) extends to a maximal M in W-bar(j) with |M ∩ J| > tau.)
  const Split split = split_neighbourhood(j);
  for (const MotionPlane::MotionId mid : dense_j) {
    if (sorted_intersection_size(plane.members(mid), split.j.ids()) >
        plane.params().tau) {
      decision.cls = AnomalyClass::kMassive;
      decision.rule = DecisionRule::kTheorem6;
      return decision;
    }
  }

  if (!options_.run_full_nsc) {
    decision.cls = AnomalyClass::kUnresolved;
    decision.rule = DecisionRule::kTheorem6Only;
    return decision;
  }

  // Theorem 7 / Corollary 8 (Algorithms 4/5): search for a violating
  // collection; its existence certifies "unresolved", its absence "massive".
  const NscOutcome outcome = search_violating_collection(j, split.l);
  decision.collections_tested = outcome.nodes;
  if (outcome.exhausted) {
    decision.cls = AnomalyClass::kUnresolved;  // safe side: never over-claims
    decision.rule = DecisionRule::kBudgetExhausted;
    decision.exact = false;
  } else if (outcome.violating_found) {
    decision.cls = AnomalyClass::kUnresolved;
    decision.rule = DecisionRule::kCorollary8;
  } else {
    decision.cls = AnomalyClass::kMassive;
    decision.rule = DecisionRule::kTheorem7;
  }
  return decision;
}

Decision Characterizer::characterize(DeviceId j) {
  return characterize_device(j);
}

namespace {

/// Word-parallel id set over the compact search universe (the members of the
/// candidate bases and of j's dense motions — everything Theorem 7 can ever
/// touch, well under a thousand ids even for massive superposed anomalies).
struct SearchBits {
  std::vector<std::uint64_t> words;

  explicit SearchBits(std::size_t bit_count) : words((bit_count + 63) / 64, 0) {}
  void set(std::size_t i) noexcept { words[i >> 6] |= 1ULL << (i & 63); }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words[i >> 6] >> (i & 63)) & 1;
  }
};

}  // namespace

Characterizer::NscOutcome Characterizer::search_violating_collection(
    DeviceId j, const DeviceSet& l) const {
  const MotionPlane& plane = *plane_;
  const StatePair& state = plane.state();
  const Params& params = plane.params();
  const std::size_t tau = params.tau;
  NscOutcome outcome;

  // Every dense motion of j lives inside N(j) (its 2r-neighbourhood), so a
  // collection element can only influence relation (4) through members it
  // shares with N(j). A base with no such member is removable from any
  // violating collection (dropping it keeps not-(4): the surviving motions
  // of j are untouched), so it is pruned — exactly.
  const auto neighbours = plane.neighbourhood(j);

  // Candidate base sets: maximal dense motions of L-neighbours avoiding j.
  // Collections are WLOG one element per base: two disjoint elements carved
  // from the same base merge into one (their union is still a subset of the
  // base — a motion — still dense, still holding a far and an L device).
  // The plane's interning makes id-level dedup exact; sorting by member
  // sequence reproduces the deterministic lexicographic walk order.
  std::vector<MotionPlane::MotionId> bases;
  for (const DeviceId ell : l) {
    for (const MotionPlane::MotionId mid : plane.dense(ell)) {
      if (!plane.motion_contains(mid, j) &&
          sorted_intersection_size(plane.members(mid), neighbours) > 0) {
        bases.push_back(mid);
      }
    }
  }
  std::sort(bases.begin(), bases.end());
  bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
  std::sort(bases.begin(), bases.end(),
            [&](MotionPlane::MotionId a, MotionPlane::MotionId b) {
              const auto ra = plane.members(a);
              const auto rb = plane.members(b);
              return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(),
                                                  rb.end());
            });

  // Compact universe: members of the bases and of j's dense motions, j
  // excluded (j is never removable). All search state below is word-parallel
  // over ranks into this universe.
  std::vector<DeviceId> universe;
  for (const MotionPlane::MotionId mid : bases) {
    const auto run = plane.members(mid);
    universe.insert(universe.end(), run.begin(), run.end());
  }
  for (const MotionPlane::MotionId mid : plane.dense(j)) {
    const auto run = plane.members(mid);
    universe.insert(universe.end(), run.begin(), run.end());
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()), universe.end());
  universe.erase(std::remove(universe.begin(), universe.end(), j), universe.end());
  const std::size_t u = universe.size();
  const auto rank_of = [&](DeviceId id) {
    return static_cast<std::size_t>(
        std::lower_bound(universe.begin(), universe.end(), id) - universe.begin());
  };

  std::vector<SearchBits> base_bits(bases.size(), SearchBits(u));
  for (std::size_t i = 0; i < bases.size(); ++i) {
    for (const DeviceId id : plane.members(bases[i])) {
      if (id != j) base_bits[i].set(rank_of(id));
    }
  }
  // Targets: j's maximal dense motions, the only sets relation (4) consults.
  // A dense motion containing j within A_k \ U exists iff some target keeps
  // at least tau members outside U (those plus j form a motion of size
  // > tau) — the counting identity has_dense_motion_avoiding also uses.
  std::vector<SearchBits> targets;
  targets.reserve(plane.dense(j).size());
  for (const MotionPlane::MotionId mid : plane.dense(j)) {
    SearchBits bits(u);
    for (const DeviceId id : plane.members(mid)) {
      if (id != j) bits.set(rank_of(id));
    }
    targets.push_back(std::move(bits));
  }
  const std::size_t words = (u + 63) / 64;
  const auto rel4_broken = [&](const std::uint64_t* used) {
    for (const SearchBits& target : targets) {
      std::size_t survivors = 0;
      for (std::size_t k = 0; k < words; ++k) {
        survivors += static_cast<std::size_t>(
            std::popcount(target.words[k] & ~used[k]));
      }
      if (survivors >= tau) return false;
    }
    return true;
  };

  // A set is usable in a violating collection only if it holds a device
  // farther than 2r from j (negation of relation (5)); such devices are
  // never target members (every target member shares a motion with j, hence
  // sits within 2r of it). The L flag doubles as the effect test: L_k(j) is
  // a subset of D_k(j) \ {j}, i.e. of the target union.
  SearchBits far_bits(u);
  SearchBits l_bits(u);
  for (std::size_t i = 0; i < u; ++i) {
    if (state.joint_distance(j, universe[i]) > params.window()) far_bits.set(i);
    if (l.contains(universe[i])) l_bits.set(i);
  }

  // Depth-first search over base sets: at each node either skip the base or
  // carve a qualifying subset (dense, a far member, an L member) out of its
  // not-yet-used members. Subsets (not just whole sets) must be explored:
  // two overlapping bases may both contribute only if trimmed to disjoint
  // parts. Each node first applies the exact subtree bound: take every
  // member the remaining *usable* bases could still contribute — if even
  // that leaves a target with tau survivors, no extension of this node can
  // break relation (4), and the subtree is pruned. This bound is what ends
  // the search quickly on dense superposed blobs (where the seed
  // implementation burned its whole node budget) while staying exact.
  //
  // All per-node state lives in per-depth scratch rows (depth == base
  // index), so the search allocates nothing past its first descent.
  const std::size_t depth_count = bases.size() + 1;
  std::vector<std::uint64_t> used_rows(depth_count * words, 0);
  std::vector<std::uint64_t> achievable_row(words);
  std::vector<std::vector<std::size_t>> avail_rows(depth_count);
  std::vector<std::vector<std::size_t>> pick_rows(depth_count);

  // `used` always points at the caller's row; depth `index` owns the row it
  // writes candidate subsets into before descending.
  const std::function<bool(std::size_t, const std::uint64_t*)> dfs =
      [&](std::size_t index, const std::uint64_t* used) -> bool {
    if (outcome.exhausted) return false;
    ++outcome.nodes;
    if (outcome.nodes > options_.node_budget) {
      outcome.exhausted = true;
      return false;
    }
    // not-(4): no dense motion containing j survives outside `used` — the
    // collection built so far is violating (not-(5) held for each pick).
    if (rel4_broken(used)) return true;
    if (index == bases.size()) return false;

    // Exact subtree bound over the usable remainder.
    std::copy(used, used + words, achievable_row.data());
    for (std::size_t i = index; i < bases.size(); ++i) {
      const std::uint64_t* base = base_bits[i].words.data();
      std::size_t unused = 0;
      bool far_member = false;
      bool l_member = false;
      for (std::size_t k = 0; k < words; ++k) {
        const std::uint64_t open = base[k] & ~used[k];
        unused += static_cast<std::size_t>(std::popcount(open));
        far_member = far_member || (open & far_bits.words[k]) != 0;
        l_member = l_member || (open & l_bits.words[k]) != 0;
      }
      if (unused <= tau || !far_member || !l_member) continue;
      for (std::size_t k = 0; k < words; ++k) achievable_row[k] |= base[k];
    }
    if (!rel4_broken(achievable_row.data())) return false;

    // Branch 1: carve a qualifying subset out of this base's unused members
    // (tried before skipping: witnesses usually involve the early bases).
    std::vector<std::size_t>& avail = avail_rows[index];
    avail.clear();
    for (std::size_t i = 0; i < u; ++i) {
      if (base_bits[index].test(i) && !((used[i >> 6] >> (i & 63)) & 1)) {
        avail.push_back(i);
      }
    }
    const std::size_t m = avail.size();
    if (m <= tau) return dfs(index + 1, used);

    std::uint64_t* next = used_rows.data() + index * words;
    // Enumerate combinations per size, largest first (they prune relation
    // (4) fastest and any violating subset stays available at smaller
    // sizes). Each candidate combination is charged against the budget.
    for (std::size_t s = m; s > tau; --s) {
      std::vector<std::size_t>& pick = pick_rows[index];
      pick.resize(s);
      for (std::size_t i = 0; i < s; ++i) pick[i] = i;
      for (;;) {
        ++outcome.nodes;
        if (outcome.nodes > options_.node_budget) {
          outcome.exhausted = true;
          return false;
        }
        bool far_member = false;
        bool l_member = false;
        std::copy(used, used + words, next);
        for (const std::size_t idx : pick) {
          const std::size_t i = avail[idx];
          far_member = far_member || far_bits.test(i);
          l_member = l_member || l_bits.test(i);
          next[i >> 6] |= 1ULL << (i & 63);
        }
        if (far_member && l_member) {
          if (dfs(index + 1, next)) return true;
          if (outcome.exhausted) return false;
        }
        // Next combination in lexicographic order.
        std::size_t i = s;
        while (i > 0 && pick[i - 1] == m - s + i - 1) --i;
        if (i == 0) break;
        ++pick[i - 1];
        for (std::size_t k = i; k < s; ++k) pick[k] = pick[k - 1] + 1;
      }
    }
    // Branch 2: skip this base set entirely.
    return dfs(index + 1, used);
  };

  const std::vector<std::uint64_t> root(words, 0);
  outcome.violating_found = dfs(0, root.data());
  return outcome;
}

std::vector<Decision> Characterizer::decide_all() {
  const DeviceSet& abnormal = plane_->state().abnormal();
  std::vector<Decision> decisions;
  decisions.reserve(abnormal.size());
  for (const DeviceId j : abnormal) {
    decisions.push_back(characterize_device(j));
  }
  return decisions;
}

std::vector<Decision> Characterizer::decide_all_on(WorkerPool& pool,
                                                   std::size_t min_fanout,
                                                   unsigned max_lanes,
                                                   std::vector<double>* lane_ms) {
  const DeviceSet& abnormal = plane_->state().abnormal();
  const std::size_t m = abnormal.size();
  std::vector<Decision> decisions(m);
  // Costliest-first dispatch when the pool will actually engage: the shared
  // cursor hands out indices in order, so without reordering one monster
  // device (big dense family x big neighbourhood — the NSC search's input)
  // drawn late serializes the whole tail behind a single lane. Sorting an
  // index indirection by that cost proxy is classic LPT against skew. Each
  // decision is a pure read of the shared plane into its own slot, so the
  // bytes stay identical to decide_all() under any schedule or ordering.
  std::vector<std::uint32_t> order;
  const bool reorder = m >= min_fanout && max_lanes != 1 && pool.parallelism() > 1;
  if (reorder) {
    std::vector<std::uint64_t> cost(m);
    for (std::size_t i = 0; i < m; ++i) {
      const DeviceId j = abnormal[i];
      cost[i] = (1 + plane_->dense(j).size()) *
                (1 + plane_->neighbourhood(j).size());
    }
    order.resize(m);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return cost[a] > cost[b];
                     });
  }
  pool.for_each(
      m, min_fanout,
      [&](std::size_t i) {
        const std::size_t slot = reorder ? order[i] : i;
        decisions[slot] = characterize_device(abnormal[slot]);
      },
      max_lanes, lane_ms);
  return decisions;
}

std::vector<Decision> Characterizer::decide_all_parallel(unsigned threads) {
  return decide_all_on(WorkerPool::shared(), options_.parallel_grain, threads);
}

CharacterizationSets Characterizer::bucket(
    const std::vector<Decision>& decisions) const {
  const DeviceSet& abnormal = plane_->state().abnormal();
  std::vector<DeviceId> isolated;
  std::vector<DeviceId> massive;
  std::vector<DeviceId> unresolved;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    switch (decisions[i].cls) {
      case AnomalyClass::kIsolated:
        isolated.push_back(abnormal[i]);
        break;
      case AnomalyClass::kMassive:
        massive.push_back(abnormal[i]);
        break;
      case AnomalyClass::kUnresolved:
        unresolved.push_back(abnormal[i]);
        break;
    }
  }
  CharacterizationSets sets;
  sets.isolated = DeviceSet::from_sorted(std::move(isolated));
  sets.massive = DeviceSet::from_sorted(std::move(massive));
  sets.unresolved = DeviceSet::from_sorted(std::move(unresolved));
  return sets;
}

CharacterizationSets Characterizer::characterize_all() { return bucket(decide_all()); }

CharacterizationSets Characterizer::characterize_all_parallel(unsigned threads) {
  return bucket(decide_all_parallel(threads));
}

DeviceSet Characterizer::neighbourhood_d(DeviceId j) {
  return split_neighbourhood(j).d;
}

DeviceSet Characterizer::neighbourhood_j(DeviceId j) {
  return split_neighbourhood(j).j;
}

DeviceSet Characterizer::neighbourhood_l(DeviceId j) {
  return split_neighbourhood(j).l;
}

}  // namespace acn
