#include "core/characterizer.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <span>
#include <stdexcept>

#include "common/worker_pool.hpp"
#include "core/kernels/kernels.hpp"

namespace acn {

Characterizer::Characterizer(const StatePair& state, Params params,
                             CharacterizeOptions options)
    : owned_plane_(std::in_place, state, params),
      plane_(&*owned_plane_),
      options_(options),
      oracle_(*plane_) {}

Characterizer::Characterizer(const MotionPlane& plane, CharacterizeOptions options)
    : plane_(&plane), options_(options), oracle_(plane) {}

Characterizer::Split Characterizer::split_neighbourhood(DeviceId j) const {
  const MotionPlane& plane = *plane_;
  Split split;

  // Word-parallel over j's component rank space. D_k(j) is the OR of the
  // membership bitsets of j's dense motions; walking its set bits in rank
  // order yields the members ascending by id (the comp-rank universe is the
  // sorted member list), exactly the order the sorted-union path produced.
  const std::uint32_t ci = plane.component_of(j);
  const auto comp = plane.component_members(ci);
  const std::size_t words = plane.component_words(ci);
  thread_local std::vector<std::uint64_t> d_bits;
  d_bits.assign(words, 0);
  for (const MotionPlane::MotionId mid : plane.dense(j)) {
    const auto bits = plane.motion_bits(mid);
    for (std::size_t k = 0; k < words; ++k) d_bits[k] |= bits[k];
  }

  // J/L split: ell joins J_k(j) iff every dense motion of ell contains j —
  // one precomputed bit test (j's comp-rank in ell's dense-intersection
  // bitset; all-ones when ell has no dense motions, matching the vacuous
  // truth of the original all-of loop).
  const std::uint32_t jcr = plane.comp_rank_of(j);
  std::vector<DeviceId> d_members;
  std::vector<DeviceId> j_members;
  std::vector<DeviceId> l_members;
  for (std::size_t k = 0; k < words; ++k) {
    std::uint64_t w = d_bits[k];
    while (w != 0) {
      const std::size_t cr = k * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const DeviceId ell = comp[cr];
      d_members.push_back(ell);
      if (cr == jcr) {
        j_members.push_back(ell);  // j's own dense motions all contain j
        continue;
      }
      const auto inter = plane.dense_intersection_bits(ell);
      if ((inter[jcr >> 6] >> (jcr & 63)) & 1) {
        j_members.push_back(ell);
      } else {
        l_members.push_back(ell);
      }
    }
  }
  split.d = DeviceSet::from_sorted(std::move(d_members));
  split.j = DeviceSet::from_sorted(std::move(j_members));
  split.l = DeviceSet::from_sorted(std::move(l_members));
  return split;
}

Decision Characterizer::characterize_device(DeviceId j) const {
  const MotionPlane& plane = *plane_;
  if (!plane.covers(j)) {
    throw std::invalid_argument("characterize: device " + std::to_string(j) +
                                " is not in A_k");
  }
  Decision decision;
  decision.maximal_motion_count = plane.maximal(j).size();

  // Theorem 5: no dense motion containing j  =>  isolated.
  const auto dense_j = plane.dense(j);
  decision.dense_motion_count = dense_j.size();
  if (dense_j.empty()) {
    decision.cls = AnomalyClass::kIsolated;
    decision.rule = DecisionRule::kTheorem5;
    return decision;
  }

  // Theorem 6 (Algorithm 3): some maximal dense motion of j intersects
  // J_k(j) in more than tau devices  =>  massive. (|M ∩ J| > tau gives the
  // dense motion M ∩ J ⊆ J_k(j) required by the theorem, and conversely any
  // dense B ⊆ J_k(j) extends to a maximal M in W-bar(j) with |M ∩ J| > tau.)
  const Split split = split_neighbourhood(j);
  // |M ∩ J| as AND + popcount over j's component rank space. The kernel
  // computes popcount(a & ~b), so J is handed over complemented; motion
  // bitsets never set tail bits past the component size, so complement tail
  // bits are harmless.
  {
    const std::uint32_t ci = plane.component_of(j);
    const std::size_t words = plane.component_words(ci);
    thread_local std::vector<std::uint64_t> not_j_bits;
    not_j_bits.assign(words, ~std::uint64_t{0});
    for (const DeviceId member : split.j) {
      const std::uint32_t cr = plane.comp_rank_of(member);
      not_j_bits[cr >> 6] &= ~(1ULL << (cr & 63));
    }
    const kernels::Ops& ops = kernels::dispatch();
    for (const MotionPlane::MotionId mid : dense_j) {
      if (ops.popcount_andnot(plane.motion_bits(mid).data(), not_j_bits.data(),
                              words) > plane.params().tau) {
        decision.cls = AnomalyClass::kMassive;
        decision.rule = DecisionRule::kTheorem6;
        return decision;
      }
    }
  }

  if (!options_.run_full_nsc) {
    decision.cls = AnomalyClass::kUnresolved;
    decision.rule = DecisionRule::kTheorem6Only;
    return decision;
  }

  // Theorem 7 / Corollary 8 (Algorithms 4/5): search for a violating
  // collection; its existence certifies "unresolved", its absence "massive".
  const NscOutcome outcome = search_violating_collection(j, split.l);
  decision.collections_tested = outcome.nodes;
  if (outcome.exhausted) {
    decision.cls = AnomalyClass::kUnresolved;  // safe side: never over-claims
    decision.rule = DecisionRule::kBudgetExhausted;
    decision.exact = false;
  } else if (outcome.violating_found) {
    decision.cls = AnomalyClass::kUnresolved;
    decision.rule = DecisionRule::kCorollary8;
  } else {
    decision.cls = AnomalyClass::kMassive;
    decision.rule = DecisionRule::kTheorem7;
  }
  return decision;
}

Decision Characterizer::characterize(DeviceId j) {
  return characterize_device(j);
}

namespace {

/// Word-parallel id set over the compact search universe (the members of the
/// candidate bases and of j's dense motions — everything Theorem 7 can ever
/// touch, well under a thousand ids even for massive superposed anomalies).
struct SearchBits {
  std::vector<std::uint64_t> words;

  explicit SearchBits(std::size_t bit_count) : words((bit_count + 63) / 64, 0) {}
  void set(std::size_t i) noexcept { words[i >> 6] |= 1ULL << (i & 63); }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words[i >> 6] >> (i & 63)) & 1;
  }
};

}  // namespace

Characterizer::NscOutcome Characterizer::search_violating_collection(
    DeviceId j, const DeviceSet& l) const {
  const MotionPlane& plane = *plane_;
  const StatePair& state = plane.state();
  const Params& params = plane.params();
  const std::size_t tau = params.tau;
  NscOutcome outcome;

  // Every dense motion of j lives inside N(j) (its 2r-neighbourhood), so a
  // collection element can only influence relation (4) through members it
  // shares with N(j). A base with no such member is removable from any
  // violating collection (dropping it keeps not-(4): the surviving motions
  // of j are untouched), so it is pruned — exactly.
  const auto neighbours = plane.neighbourhood(j);

  // The candidate scan below is word-parallel over j's component rank space
  // (every base and target motion lives in j's 2r-interaction component); the
  // search itself then re-ranks the support densely so per-node cost scales
  // with the support, not the component (see below).
  const std::uint32_t ci = plane.component_of(j);
  const auto comp = plane.component_members(ci);
  const std::size_t words = plane.component_words(ci);
  const std::uint32_t jcr = plane.comp_rank_of(j);
  // The search makes hundreds of thousands of kernel calls on a hot device;
  // the raw table skips the per-call counting wrappers (two relaxed atomic
  // adds plus an indirect call each) and the counters are charged in bulk on
  // exit. Debug builds still cross-check every call against the scalar path.
  const kernels::Ops& ops = kernels::dispatch_raw();
  std::uint64_t kernel_calls = 0;
  std::uint64_t kernel_words = 0;

  // N(j) as a bitset (for the "base intersects N(j)" prune below).
  SearchBits nbr_bits(comp.size());
  for (const DeviceId id : neighbours) nbr_bits.set(plane.comp_rank_of(id));

  // Candidate base sets: maximal dense motions of L-neighbours avoiding j.
  // Collections are WLOG one element per base: two disjoint elements carved
  // from the same base merge into one (their union is still a subset of the
  // base — a motion — still dense, still holding a far and an L device).
  // The plane's interning makes id-level dedup exact; sorting by member
  // sequence reproduces the deterministic lexicographic walk order.
  std::vector<MotionPlane::MotionId> bases;
  for (const DeviceId ell : l) {
    for (const MotionPlane::MotionId mid : plane.dense(ell)) {
      if (plane.motion_contains(mid, j)) continue;
      const auto bits = plane.motion_bits(mid);
      bool touches = false;
      for (std::size_t k = 0; k < words && !touches; ++k) {
        touches = (bits[k] & nbr_bits.words[k]) != 0;
      }
      if (touches) bases.push_back(mid);
    }
  }
  std::sort(bases.begin(), bases.end());
  bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
  std::sort(bases.begin(), bases.end(),
            [&](MotionPlane::MotionId a, MotionPlane::MotionId b) {
              const auto ra = plane.members(a);
              const auto rb = plane.members(b);
              return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(),
                                                  rb.end());
            });

  // Compact search universe: the members of the bases and of j's dense
  // motions (j excluded — never removable), re-ranked densely so the
  // word-parallel search state is as narrow as the support, not as wide as
  // the whole component. Built by OR-ing the plane's membership bitsets and
  // walking the set bits once — comp-rank order is id order, so dense rank
  // i is the i-th support id ascending, the exact universe (and avail-list
  // order) of a sorted-merge construction, at O(1) per member.
  const std::size_t dense_count = plane.dense(j).size();
  SearchBits support(comp.size());
  for (const MotionPlane::MotionId mid : bases) {
    const auto bits = plane.motion_bits(mid);
    for (std::size_t k = 0; k < words; ++k) support.words[k] |= bits[k];
  }
  for (std::size_t i = 0; i < dense_count; ++i) {
    const auto bits = plane.motion_bits(plane.dense(j)[i]);
    for (std::size_t k = 0; k < words; ++k) support.words[k] |= bits[k];
  }
  support.words[jcr >> 6] &= ~(1ULL << (jcr & 63));
  // dense_rank[cr] is only read for support comp-ranks, so the stale slots
  // of a reused buffer never leak into a later call.
  thread_local std::vector<std::uint32_t> dense_rank;
  if (dense_rank.size() < comp.size()) dense_rank.resize(comp.size());
  std::uint32_t u = 0;
  // A set is usable in a violating collection only if it holds a device
  // farther than 2r from j (negation of relation (5)); such devices are
  // never target members (every target member shares a motion with j, hence
  // sits within 2r of it). The L flag doubles as the effect test: L_k(j) is
  // a subset of D_k(j) \ {j}, i.e. of the target union.
  std::vector<std::uint64_t> far_l_scratch;
  for (std::size_t k = 0; k < words; ++k) {
    std::uint64_t w = support.words[k];
    while (w != 0) {
      const std::size_t cr = k * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      dense_rank[cr] = u;
      const DeviceId id = comp[cr];
      const bool far = state.joint_distance(j, id) > params.window();
      far_l_scratch.push_back((far ? 1u : 0u) | (l.contains(id) ? 2u : 0u));
      ++u;
    }
  }
  const std::size_t cwords = (u + 63) / 64;
  SearchBits far_bits(u);
  SearchBits l_bits(u);
  for (std::uint32_t i = 0; i < u; ++i) {
    if (far_l_scratch[i] & 1u) far_bits.set(i);
    if (far_l_scratch[i] & 2u) l_bits.set(i);
  }

  // Re-rank the plane bitsets into the compact space. Bases avoid j, so
  // nothing to clear there; targets (j's maximal dense motions, the only
  // sets relation (4) consults — a dense motion containing j within
  // A_k \ U exists iff some target keeps at least tau members outside U,
  // the counting identity has_dense_motion_avoiding also uses) drop j's
  // bit via the support mask above.
  const auto compact_into = [&](MotionPlane::MotionId mid, std::uint64_t* out) {
    const auto bits = plane.motion_bits(mid);
    for (std::size_t k = 0; k < words; ++k) {
      std::uint64_t w = bits[k] & support.words[k];
      while (w != 0) {
        const std::size_t cr =
            k * 64 + static_cast<std::size_t>(std::countr_zero(w));
        w &= w - 1;
        const std::uint32_t i = dense_rank[cr];
        out[i >> 6] |= 1ULL << (i & 63);
      }
    }
  };
  std::vector<std::uint64_t> base_words(bases.size() * cwords, 0);
  std::vector<const std::uint64_t*> base_bits;
  base_bits.reserve(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    compact_into(bases[i], base_words.data() + i * cwords);
    base_bits.push_back(base_words.data() + i * cwords);
  }
  std::vector<std::uint64_t> target_words(dense_count * cwords, 0);
  for (std::size_t i = 0; i < dense_count; ++i) {
    compact_into(plane.dense(j)[i], target_words.data() + i * cwords);
  }
  const auto rel4_broken = [&](const std::uint64_t* used) {
    ++kernel_calls;
    kernel_words += dense_count * cwords;
    return ops.targets_all_below(target_words.data(), dense_count, cwords, used,
                                 tau);
  };

  // Depth-first search over base sets: at each node either skip the base or
  // carve a qualifying subset (dense, a far member, an L member) out of its
  // not-yet-used members. Subsets (not just whole sets) must be explored:
  // two overlapping bases may both contribute only if trimmed to disjoint
  // parts. Each node first applies the exact subtree bound: take every
  // member the remaining *usable* bases could still contribute — if even
  // that leaves a target with tau survivors, no extension of this node can
  // break relation (4), and the subtree is pruned. This bound is what ends
  // the search quickly on dense superposed blobs (where the seed
  // implementation burned its whole node budget) while staying exact.
  //
  // The usability scan that feeds the bound is threaded down the search:
  // `used` only grows along a descent, so a base unusable at a node (open
  // part <= tau, or no open far / L member) is unusable in the whole
  // subtree. Each node therefore scans only the rows its ancestors found
  // usable (one nsc_scan_rows kernel call), passes the survivors to its
  // children, and skips the combination enumeration outright when its own
  // base is unusable — no pick carved from it could qualify.
  //
  // All per-node state lives in per-depth scratch rows (depth == base
  // index), so the search allocates nothing past its first descent.
  const std::size_t depth_count = bases.size() + 1;
  std::vector<std::uint64_t> used_rows(depth_count * cwords, 0);
  std::vector<std::uint64_t> achievable_row(cwords);
  std::vector<std::vector<std::size_t>> avail_rows(depth_count);
  std::vector<std::vector<std::uint8_t>> flag_rows(depth_count);
  std::vector<std::vector<std::size_t>> pick_rows(depth_count);
  std::vector<std::vector<std::uint32_t>> cand_rows(depth_count + 1);
  cand_rows[0].resize(bases.size());
  std::iota(cand_rows[0].begin(), cand_rows[0].end(), 0u);

  // `used` always points at the caller's row; depth `index` owns the row it
  // writes candidate subsets into before descending, plus the survivor list
  // (cand_rows[index + 1]) its children read.
  const auto dfs = [&](auto&& self, std::size_t index, const std::uint64_t* used,
                       std::span<const std::uint32_t> rows) -> bool {
    if (outcome.exhausted) return false;
    ++outcome.nodes;
    if (outcome.nodes > options_.node_budget) {
      outcome.exhausted = true;
      return false;
    }
    // not-(4): no dense motion containing j survives outside `used` — the
    // collection built so far is violating (not-(5) held for each pick).
    if (rel4_broken(used)) return true;
    if (index == bases.size()) return false;
    // Ancestors' survivor lists may still lead with bases already passed.
    while (!rows.empty() && rows.front() < index) rows = rows.subspan(1);

    // Usability scan + exact subtree bound, one kernel call: scan_open every
    // candidate base, OR the usable ones into achievable_row, keep their
    // indices for the children.
    std::vector<std::uint32_t>& surv = cand_rows[index + 1];
    surv.resize(rows.size());
    std::copy(used, used + cwords, achievable_row.data());
    ++kernel_calls;
    kernel_words += rows.size() * cwords;
    const std::size_t surv_n = ops.nsc_scan_rows(
        base_words.data(), rows.data(), rows.size(), cwords, used,
        far_bits.words.data(), l_bits.words.data(), tau, achievable_row.data(),
        surv.data());
    if (!rel4_broken(achievable_row.data())) return false;
    const std::span<const std::uint32_t> child(surv.data(), surv_n);

    // Branch 1: carve a qualifying subset out of this base's unused members
    // (tried before skipping: witnesses usually involve the early bases).
    // Only a usable base can yield a qualifying pick — an open part of at
    // most tau members, or one with no far or no L device, fails every
    // pick's constraints, so the enumeration is skipped exactly.
    if (surv_n == 0 || child.front() != index) {
      return self(self, index + 1, used, child);
    }
    // Walking the set bits of base & ~used in word order yields the same
    // ascending rank order the dense scan produced. Each open member's far /
    // L membership is cached as a flag byte so the combination walk below
    // can maintain its counts with two table reads per changed position.
    std::vector<std::size_t>& avail = avail_rows[index];
    std::vector<std::uint8_t>& aflags = flag_rows[index];
    avail.clear();
    aflags.clear();
    for (std::size_t k = 0; k < cwords; ++k) {
      std::uint64_t w = base_bits[index][k] & ~used[k];
      while (w != 0) {
        const std::size_t i =
            k * 64 + static_cast<std::size_t>(std::countr_zero(w));
        w &= w - 1;
        avail.push_back(i);
        aflags.push_back(static_cast<std::uint8_t>(
            (far_bits.test(i) ? 1u : 0u) | (l_bits.test(i) ? 2u : 0u)));
      }
    }
    const std::size_t m = avail.size();  // > tau: the base is usable

    std::uint64_t* next = used_rows.data() + index * cwords;
    // The candidate row and the far / L counts are maintained incrementally
    // across the lexicographic walk: a successor step only rewrites the
    // suffix of the pick that changed (usually just the last position), so
    // the per-candidate cost is O(changed positions), not O(s).
    unsigned far_cnt = 0;
    unsigned l_cnt = 0;
    const auto add_member = [&](std::size_t p) {
      const std::size_t i = avail[p];
      next[i >> 6] |= 1ULL << (i & 63);
      far_cnt += aflags[p] & 1u;
      l_cnt += aflags[p] >> 1;
    };
    const auto drop_member = [&](std::size_t p) {
      const std::size_t i = avail[p];
      next[i >> 6] &= ~(1ULL << (i & 63));
      far_cnt -= aflags[p] & 1u;
      l_cnt -= aflags[p] >> 1;
    };
    // Enumerate combinations per size, largest first (they prune relation
    // (4) fastest and any violating subset stays available at smaller
    // sizes). Each candidate combination is charged against the budget.
    for (std::size_t s = m; s > tau; --s) {
      std::vector<std::size_t>& pick = pick_rows[index];
      pick.resize(s);
      std::copy(used, used + cwords, next);
      far_cnt = 0;
      l_cnt = 0;
      for (std::size_t i = 0; i < s; ++i) {
        pick[i] = i;
        add_member(i);
      }
      for (;;) {
        ++outcome.nodes;
        if (outcome.nodes > options_.node_budget) {
          outcome.exhausted = true;
          return false;
        }
        if (far_cnt != 0 && l_cnt != 0) {
          if (self(self, index + 1, next, child.subspan(1))) return true;
          if (outcome.exhausted) return false;
        }
        // Next combination in lexicographic order.
        std::size_t i = s;
        while (i > 0 && pick[i - 1] == m - s + i - 1) --i;
        if (i == 0) break;
        for (std::size_t k = i - 1; k < s; ++k) drop_member(pick[k]);
        ++pick[i - 1];
        for (std::size_t k = i; k < s; ++k) pick[k] = pick[k - 1] + 1;
        for (std::size_t k = i - 1; k < s; ++k) add_member(pick[k]);
      }
    }
    // Branch 2: skip this base set entirely.
    return self(self, index + 1, used, child.subspan(1));
  };

  const std::vector<std::uint64_t> root(cwords, 0);
  outcome.violating_found = dfs(dfs, 0, root.data(), cand_rows[0]);
  kernels::counters_charge_popcnt(kernel_calls, kernel_words);
  return outcome;
}

std::vector<Decision> Characterizer::decide_all() {
  const DeviceSet& abnormal = plane_->state().abnormal();
  std::vector<Decision> decisions;
  decisions.reserve(abnormal.size());
  for (const DeviceId j : abnormal) {
    decisions.push_back(characterize_device(j));
  }
  return decisions;
}

std::vector<Decision> Characterizer::decide_all_on(WorkerPool& pool,
                                                   std::size_t min_fanout,
                                                   unsigned max_lanes,
                                                   std::vector<double>* lane_ms) {
  const DeviceSet& abnormal = plane_->state().abnormal();
  const std::size_t m = abnormal.size();
  std::vector<Decision> decisions(m);
  // Costliest-first dispatch when the pool will actually engage: the shared
  // cursor hands out indices in order, so without reordering one monster
  // device (big dense family x big neighbourhood — the NSC search's input)
  // drawn late serializes the whole tail behind a single lane. Sorting an
  // index indirection by that cost proxy is classic LPT against skew. Each
  // decision is a pure read of the shared plane into its own slot, so the
  // bytes stay identical to decide_all() under any schedule or ordering.
  std::vector<std::uint32_t> order;
  const bool reorder = m >= min_fanout && max_lanes != 1 && pool.parallelism() > 1;
  if (reorder) {
    std::vector<std::uint64_t> cost(m);
    for (std::size_t i = 0; i < m; ++i) {
      const DeviceId j = abnormal[i];
      cost[i] = (1 + plane_->dense(j).size()) *
                (1 + plane_->neighbourhood(j).size());
    }
    order.resize(m);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return cost[a] > cost[b];
                     });
  }
  pool.for_each(
      m, min_fanout,
      [&](std::size_t i) {
        const std::size_t slot = reorder ? order[i] : i;
        decisions[slot] = characterize_device(abnormal[slot]);
      },
      max_lanes, lane_ms);
  return decisions;
}

std::vector<Decision> Characterizer::decide_all_parallel(unsigned threads) {
  return decide_all_on(WorkerPool::shared(), options_.parallel_grain, threads);
}

CharacterizationSets Characterizer::bucket(
    const std::vector<Decision>& decisions) const {
  const DeviceSet& abnormal = plane_->state().abnormal();
  std::vector<DeviceId> isolated;
  std::vector<DeviceId> massive;
  std::vector<DeviceId> unresolved;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    switch (decisions[i].cls) {
      case AnomalyClass::kIsolated:
        isolated.push_back(abnormal[i]);
        break;
      case AnomalyClass::kMassive:
        massive.push_back(abnormal[i]);
        break;
      case AnomalyClass::kUnresolved:
        unresolved.push_back(abnormal[i]);
        break;
    }
  }
  CharacterizationSets sets;
  sets.isolated = DeviceSet::from_sorted(std::move(isolated));
  sets.massive = DeviceSet::from_sorted(std::move(massive));
  sets.unresolved = DeviceSet::from_sorted(std::move(unresolved));
  return sets;
}

CharacterizationSets Characterizer::characterize_all() { return bucket(decide_all()); }

CharacterizationSets Characterizer::characterize_all_parallel(unsigned threads) {
  return bucket(decide_all_parallel(threads));
}

DeviceSet Characterizer::neighbourhood_d(DeviceId j) {
  return split_neighbourhood(j).d;
}

DeviceSet Characterizer::neighbourhood_j(DeviceId j) {
  return split_neighbourhood(j).j;
}

DeviceSet Characterizer::neighbourhood_l(DeviceId j) {
  return split_neighbourhood(j).l;
}

}  // namespace acn
