// Points of the QoS space E = [0,1]^d under the uniform (Chebyshev) norm.
//
// The paper works in E with d = number of services per device (§III-A) and
// in the *joint space* E x E: a set of devices has an r-consistent motion in
// [k-1, k] iff its Chebyshev diameter is <= 2r at both instants, i.e. iff
// its 2d-dimensional joint bounding box has side <= 2r. Point supports both
// roles; capacity covers d <= 8 services (16 joint dimensions).
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>

namespace acn {

class Point {
 public:
  static constexpr std::size_t kMaxDim = 16;

  Point() = default;
  /// Throws std::invalid_argument if coords.size() is 0 or > kMaxDim.
  explicit Point(std::span<const double> coords);
  Point(std::initializer_list<double> coords);

  /// Origin of the given dimension.
  [[nodiscard]] static Point zero(std::size_t dim);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] double operator[](std::size_t i) const noexcept { return coords_[i]; }
  [[nodiscard]] double& operator[](std::size_t i) noexcept { return coords_[i]; }

  /// Copy assignment touching only the meaningful coordinates. The default
  /// assignment memcpys the whole fixed-capacity array (136 bytes); for the
  /// common low-dimension case this writes dim() doubles instead, which
  /// matters on per-report hot paths (ingest staging, roster updates).
  /// Coordinates past dim() are left stale — every observer (equality,
  /// chebyshev, in_unit_box, to_string, concat) reads only the first dim().
  void assign_compact(const Point& other) noexcept {
    dim_ = other.dim_;
    for (std::size_t i = 0; i < other.dim_; ++i) coords_[i] = other.coords_[i];
  }

  /// True if every coordinate lies in [0, 1] (the QoS space proper).
  [[nodiscard]] bool in_unit_box() const noexcept;

  /// Concatenates two points (used to form joint positions).
  [[nodiscard]] static Point concat(const Point& a, const Point& b);

  /// Chebyshev (L-infinity) distance; requires equal dimensions.
  friend double chebyshev(const Point& a, const Point& b) noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Point& a, const Point& b) noexcept;

 private:
  std::array<double, kMaxDim> coords_{};
  std::size_t dim_ = 0;
};

}  // namespace acn
