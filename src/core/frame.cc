#include "core/frame.hpp"

#include <chrono>
#include <stdexcept>

namespace acn {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

void SnapshotRing::prime(Snapshot first) {
  Snapshot prev = first;  // the one unavoidable copy: both slots of S_0
  state_.emplace(std::move(prev), std::move(first), DeviceSet{});
  moved_.clear();
}

const std::vector<DeviceId>& SnapshotRing::advance(Snapshot next,
                                                   DeviceSet abnormal) {
  if (!primed()) {
    throw std::logic_error("SnapshotRing::advance: prime() a snapshot first");
  }
  state_->advance(std::move(next), std::move(abnormal), &moved_);
  return moved_;
}

FrameEngine::FrameEngine(Config config)
    : config_(config),
      grid_(std::max(config.model.window(), kMinGridCell)),
      pool_(config.threads),
      source_(*this) {
  config_.model.validate();
}

std::optional<FrameEngine::Result> FrameEngine::observe(Snapshot positions,
                                                        DeviceSet abnormal) {
  stats_ = {};
  if (!ring_.primed()) {
    // Priming snapshot: no previous state, nothing to characterize (any
    // abnormal ids are moot — there is no interval they fired in).
    auto t0 = Clock::now();
    ring_.prime(std::move(positions));
    abnormal_flag_.assign(ring_.state().n(), 0);
    stats_.state_ms = ms_since(t0);
    t0 = Clock::now();
    grid_.rebuild(ring_.state());
    stats_.grid_ms = ms_since(t0);
    ++intervals_;
    return std::nullopt;
  }

  // Roll the ring (validates shape; strong guarantee), then swap the A_k
  // mask from the previous interval's ids to the new ones — O(|A_{k-1}| +
  // |A_k|), never O(n).
  auto t0 = Clock::now();
  const DeviceSet previous_abnormal = ring_.state().abnormal();
  const std::vector<DeviceId>& moved =
      ring_.advance(std::move(positions), std::move(abnormal));
  const StatePair& state = ring_.state();
  for (const DeviceId j : previous_abnormal) abnormal_flag_[j] = 0;
  for (const DeviceId j : state.abnormal()) abnormal_flag_[j] = 1;
  stats_.state_ms = ms_since(t0);
  stats_.moved = moved.size();
  stats_.abnormal = state.abnormal().size();

  t0 = Clock::now();
  grid_.apply(state, moved);
  stats_.grid_ms = ms_since(t0);

  // Plane over the 4r-closure of A_k: neighbourhoods come from the fleet
  // grid masked to A_k, components fan out over the engine pool.
  t0 = Clock::now();
  plane_.reset();
  plane_.emplace(state, config_.model, source_, &pool_, config_.component_fanout);
  stats_.plane_ms = ms_since(t0);
  stats_.components = plane_->counters().enumeration_calls;
  stats_.motions = plane_->motion_count();

  t0 = Clock::now();
  Result result;
  Characterizer characterizer(*plane_, config_.characterize);
  result.decisions =
      characterizer.decide_all_on(pool_, config_.characterize.parallel_grain);
  std::vector<DeviceId> isolated;
  std::vector<DeviceId> massive;
  std::vector<DeviceId> unresolved;
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    const DeviceId j = state.abnormal()[i];
    switch (result.decisions[i].cls) {
      case AnomalyClass::kIsolated: isolated.push_back(j); break;
      case AnomalyClass::kMassive: massive.push_back(j); break;
      case AnomalyClass::kUnresolved: unresolved.push_back(j); break;
    }
  }
  result.sets.isolated = DeviceSet::from_sorted(std::move(isolated));
  result.sets.massive = DeviceSet::from_sorted(std::move(massive));
  result.sets.unresolved = DeviceSet::from_sorted(std::move(unresolved));
  stats_.characterize_ms = ms_since(t0);

  ++intervals_;
  return result;
}

}  // namespace acn
