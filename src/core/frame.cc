#include "core/frame.hpp"

#include <chrono>
#include <stdexcept>

namespace acn {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

void SnapshotRing::prime(Snapshot first) {
  Snapshot prev = first;  // the one unavoidable copy: both slots of S_0
  state_.emplace(std::move(prev), std::move(first), DeviceSet{});
  moved_.clear();
}

const std::vector<DeviceId>& SnapshotRing::advance(Snapshot next,
                                                   DeviceSet abnormal,
                                                   WorkerPool* pool,
                                                   std::vector<double>* lane_ms) {
  if (!primed()) {
    throw std::logic_error("SnapshotRing::advance: prime() a snapshot first");
  }
  state_->advance(std::move(next), std::move(abnormal), &moved_, pool, lane_ms);
  return moved_;
}

FrameEngine::FrameEngine(Config config)
    : config_(config),
      pool_(config.threads),
      grid_(std::max(config.model.window(), kMinGridCell),
            config.shards != 0 ? config.shards : pool_.parallelism()),
      source_(*this) {
  config_.model.validate();
}

std::optional<FrameEngine::Result> FrameEngine::observe(Snapshot positions,
                                                        DeviceSet abnormal) {
  stats_ = {};
  stats_.shards = grid_.shards();
  const kernels::Counters kernel_before = kernels::counters_snapshot();
  std::vector<double> lane_scratch;
  if (!ring_.primed()) {
    // Priming snapshot: no previous state, nothing to characterize (any
    // abnormal ids are moot — there is no interval they fired in).
    auto t0 = Clock::now();
    ring_.prime(std::move(positions));
    abnormal_flag_.assign(ring_.state().n(), 0);
    stats_.state_ms = ms_since(t0);
    t0 = Clock::now();
    grid_.rebuild(ring_.state(), &pool_, &lane_scratch);
    stats_.grid_ms = ms_since(t0);
    stats_.grid_lanes = LaneBreakdown::of(lane_scratch);
    ++intervals_;
    return std::nullopt;
  }

  // Roll the ring (validates shape; strong guarantee), then swap the A_k
  // mask from the previous interval's ids to the new ones — O(|A_{k-1}| +
  // |A_k|), never O(n).
  auto t0 = Clock::now();
  const DeviceSet previous_abnormal = ring_.state().abnormal();
  const std::vector<DeviceId>& moved =
      ring_.advance(std::move(positions), std::move(abnormal), &pool_, &lane_scratch);
  const StatePair& state = ring_.state();
  for (const DeviceId j : previous_abnormal) abnormal_flag_[j] = 0;
  for (const DeviceId j : state.abnormal()) abnormal_flag_[j] = 1;
  stats_.state_ms = ms_since(t0);
  stats_.state_lanes = LaneBreakdown::of(lane_scratch);
  stats_.moved = moved.size();
  stats_.abnormal = state.abnormal().size();

  // Grid re-bucket in two steps: the serial halo exchange routes each
  // move's bucket edits to the owner shards, then every shard drains its
  // queue concurrently (disjoint maps — no locks).
  t0 = Clock::now();
  grid_.stage(state, moved);
  stats_.halo_ms = ms_since(t0);
  const auto t_apply = Clock::now();
  grid_.apply_staged(state, &pool_, &lane_scratch);
  stats_.grid_ms = stats_.halo_ms + ms_since(t_apply);
  stats_.grid_lanes = LaneBreakdown::of(lane_scratch);

  // Plane over the 4r-closure of A_k: neighbourhoods come from the sharded
  // fleet grid masked to A_k (cross-shard halo reads are plain lookups into
  // immutable neighbour maps), both build passes fan out over the pool.
  t0 = Clock::now();
  PlaneBuildLanes plane_lanes;
  plane_.reset();
  plane_.emplace(state, config_.model, source_, &pool_, config_.component_fanout,
                 &plane_lanes, config_.plane_arena_budget);
  stats_.plane_ms = ms_since(t0);
  stats_.plane_query_lanes = LaneBreakdown::of(plane_lanes.query_lane_ms);
  stats_.plane_enum_lanes = LaneBreakdown::of(plane_lanes.enumerate_lane_ms);
  stats_.components = plane_->counters().enumeration_calls;
  stats_.motions = plane_->motion_count();

  t0 = Clock::now();
  Result result;
  Characterizer characterizer(*plane_, config_.characterize);
  result.decisions = characterizer.decide_all_on(
      pool_, config_.characterize.parallel_grain, 0, &lane_scratch);
  stats_.characterize_lanes = LaneBreakdown::of(lane_scratch);
  std::vector<DeviceId> isolated;
  std::vector<DeviceId> massive;
  std::vector<DeviceId> unresolved;
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    const DeviceId j = state.abnormal()[i];
    switch (result.decisions[i].cls) {
      case AnomalyClass::kIsolated: isolated.push_back(j); break;
      case AnomalyClass::kMassive: massive.push_back(j); break;
      case AnomalyClass::kUnresolved: unresolved.push_back(j); break;
    }
  }
  result.sets.isolated = DeviceSet::from_sorted(std::move(isolated));
  result.sets.massive = DeviceSet::from_sorted(std::move(massive));
  result.sets.unresolved = DeviceSet::from_sorted(std::move(unresolved));
  stats_.characterize_ms = ms_since(t0);
  stats_.kernel = kernels::counters_snapshot() - kernel_before;

  ++intervals_;
  return result;
}

}  // namespace acn
